//! Property tests for the search-state machinery: counter maintenance,
//! cascade invariants, and rollback fidelity under random operation
//! sequences.

use kr_core::component::LocalComponent;
use kr_core::search::{SearchState, Status};
use kr_graph::VertexId;
use proptest::prelude::*;

/// Random component: adjacency + dissimilarity over n vertices.
fn arb_component(n_max: usize) -> impl Strategy<Value = LocalComponent> {
    (3..=n_max).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (
            proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..=pairs.min(40)),
            proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..=pairs.min(12)),
            1u32..=3,
        )
            .prop_map(move |(edges, dis_pairs, k)| {
                let mut adj = vec![Vec::new(); n];
                for (u, v) in edges {
                    if u != v {
                        adj[u as usize].push(v);
                        adj[v as usize].push(u);
                    }
                }
                let mut dis = vec![Vec::new(); n];
                for (u, v) in dis_pairs {
                    if u != v {
                        dis[u as usize].push(v);
                        dis[v as usize].push(u);
                    }
                }
                LocalComponent::from_parts(adj, dis, k)
            })
    })
}

// Replays random sequences of expand/shrink operations with rollbacks
// interleaved, asserting the invariants after every step.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn invariants_hold_through_random_walk(
        comp in arb_component(10),
        choices in proptest::collection::vec((0u8..3, 0u32..10), 1..24),
    ) {
        let mut st = SearchState::new(&comp);
        if !st.prune_root() {
            return Ok(());
        }
        st.debug_assert_invariants();
        let mut marks: Vec<usize> = vec![];
        for (op, pick) in choices {
            let cands: Vec<VertexId> = (0..comp.len() as VertexId)
                .filter(|&v| st.status(v) == Status::Cand)
                .collect();
            match op {
                0 | 1 if !cands.is_empty() => {
                    let u = cands[pick as usize % cands.len()];
                    marks.push(st.mark());
                    let ok = if op == 0 { st.expand(u) } else { st.shrink(u) };
                    if !ok {
                        let m = marks.pop().expect("mark pushed");
                        st.rollback(m);
                    }
                    st.debug_assert_invariants();
                }
                2 => {
                    if let Some(m) = marks.pop() {
                        st.rollback(m);
                        st.debug_assert_invariants();
                    }
                }
                _ => {}
            }
        }
        // Roll everything back past prune_root: every vertex is a candidate
        // again. (Eq. 2 need not hold in this pre-root state, so only the
        // status book-keeping is checked.)
        while let Some(m) = marks.pop() {
            st.rollback(m);
        }
        st.rollback(0);
        let n_cand = (0..comp.len() as VertexId)
            .filter(|&v| st.status(v) == Status::Cand)
            .count();
        prop_assert_eq!(n_cand, comp.len());
        prop_assert_eq!(st.sizes(), (0, comp.len() as u32, 0));
    }

    #[test]
    fn expand_enforces_similarity_invariant(comp in arb_component(10)) {
        let mut st = SearchState::new(&comp);
        if !st.prune_root() {
            return Ok(());
        }
        // Expand random-but-deterministic candidates until none remain.
        loop {
            let cand = (0..comp.len() as VertexId)
                .find(|&v| st.status(v) == Status::Cand);
            let Some(u) = cand else { break };
            let m = st.mark();
            if st.expand(u) {
                // Every M vertex is similar to all of M ∪ C.
                for v in 0..comp.len() as VertexId {
                    if st.status(v) == Status::Chosen {
                        for &w in comp.dissimilar(v) {
                            prop_assert!(
                                !matches!(st.status(w), Status::Chosen | Status::Cand),
                                "dissimilar pair ({v},{w}) inside M ∪ C"
                            );
                        }
                    }
                }
            } else {
                st.rollback(m);
                break;
            }
        }
    }

    #[test]
    fn counters_match_recomputation_after_ops(
        comp in arb_component(9),
        ops in proptest::collection::vec((0u8..2, 0u32..9), 1..10),
    ) {
        let mut st = SearchState::new(&comp);
        if !st.prune_root() {
            return Ok(());
        }
        for (op, pick) in ops {
            let cands: Vec<VertexId> = (0..comp.len() as VertexId)
                .filter(|&v| st.status(v) == Status::Cand)
                .collect();
            if cands.is_empty() {
                break;
            }
            let u = cands[pick as usize % cands.len()];
            let m = st.mark();
            let ok = if op == 0 { st.expand(u) } else { st.shrink(u) };
            if !ok {
                st.rollback(m);
                continue;
            }
            // Aggregates match brute-force recomputation.
            let mc: Vec<VertexId> = (0..comp.len() as VertexId)
                .filter(|&v| matches!(st.status(v), Status::Chosen | Status::Cand))
                .collect();
            let mut edges = 0u64;
            for &v in &mc {
                for &w in comp.neighbors(v) {
                    if w > v && matches!(st.status(w), Status::Chosen | Status::Cand) {
                        edges += 1;
                    }
                }
            }
            prop_assert_eq!(st.edges_mc(), edges);
            let mut dp = 0u64;
            let mut sf = 0u32;
            for v in 0..comp.len() as VertexId {
                if st.status(v) == Status::Cand {
                    let d = comp.dissimilar(v)
                        .iter()
                        .filter(|&&w| st.status(w) == Status::Cand)
                        .count() as u64;
                    dp += d;
                    if d == 0 {
                        sf += 1;
                    }
                }
            }
            prop_assert_eq!(st.dp_c_total(), dp / 2);
            prop_assert_eq!(st.sf_count(), sf);
        }
    }
}
