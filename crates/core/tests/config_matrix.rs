//! Exhaustive configuration-matrix test: every combination of toggles,
//! orders, bounds, branch policies, and check orders must produce the same
//! answer on a fixed non-trivial instance.

use kr_core::{
    enumerate_maximal, find_maximum, AlgoConfig, BoundKind, BranchPolicy, CheckOrder, KrCore,
    ProblemInstance, SearchOrder,
};
use kr_graph::{Graph, VertexId};
use kr_similarity::{AttributeTable, Metric, Threshold};

/// A 14-vertex instance with three geo clusters, bridges, and a hub that
/// blends two clusters — small enough to be fast, rich enough to exercise
/// every code path (disconnected leaves, E-set evictions, maximal checks).
fn fixture() -> ProblemInstance {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    // Cluster A: 0..5 (5-clique-ish), Cluster B: 5..10, Cluster C: 10..14.
    for base in [0u32, 5] {
        for i in 0..5 {
            for j in (i + 1)..5 {
                if (i + j) % 4 != 3 {
                    edges.push((base + i, base + j));
                }
            }
        }
    }
    for i in 10..14u32 {
        for j in (i + 1)..14 {
            edges.push((i, j));
        }
    }
    // Bridges and a blending hub.
    edges.extend([(4, 5), (9, 10), (2, 7), (3, 12), (8, 13)]);
    let g = Graph::from_edges(14, &edges);
    let pts = vec![
        (0.0, 0.0),
        (1.0, 0.0),
        (0.0, 1.0),
        (1.0, 1.0),
        (3.0, 0.5), // A, with 4 drifting toward B
        (6.0, 0.0),
        (7.0, 0.0),
        (6.0, 1.0),
        (7.0, 1.0),
        (9.0, 0.5), // B, with 9 drifting toward C
        (12.0, 0.0),
        (13.0, 0.0),
        (12.0, 1.0),
        (13.0, 1.0),
    ];
    ProblemInstance::new(
        g,
        AttributeTable::points(pts),
        Metric::Euclidean,
        Threshold::MaxDistance(4.5),
        2,
    )
}

#[test]
fn all_enumeration_configs_agree() {
    let p = fixture();
    let reference = enumerate_maximal(&p, &AlgoConfig::naive_enum()).cores;
    assert!(!reference.is_empty(), "fixture should have cores; got none");
    let mut tried = 0;
    for retain in [false, true] {
        for early in [false, true] {
            for maximal in [false, true] {
                for order in [
                    SearchOrder::Random,
                    SearchOrder::Degree,
                    SearchOrder::Delta1,
                    SearchOrder::Delta2,
                    SearchOrder::Delta1ThenDelta2,
                    SearchOrder::LambdaDelta,
                ] {
                    for check in [
                        CheckOrder::Degree,
                        CheckOrder::Delta1ThenDelta2,
                        CheckOrder::LambdaDelta,
                    ] {
                        let mut cfg = AlgoConfig::basic_enum();
                        cfg.retain_candidates = retain;
                        cfg.early_termination = early;
                        cfg.maximal_check = maximal;
                        cfg.order = order;
                        cfg.check_order = check;
                        let got = enumerate_maximal(&p, &cfg);
                        assert!(got.completed);
                        assert_eq!(
                            got.cores, reference,
                            "retain={retain} early={early} maximal={maximal} order={order:?} check={check:?}"
                        );
                        tried += 1;
                    }
                }
            }
        }
    }
    assert_eq!(tried, 2 * 2 * 2 * 6 * 3);
}

#[test]
fn all_maximum_configs_agree() {
    let p = fixture();
    let reference: usize = enumerate_maximal(&p, &AlgoConfig::adv_enum())
        .cores
        .iter()
        .map(KrCore::len)
        .max()
        .unwrap();
    for bound in [
        BoundKind::Naive,
        BoundKind::Color,
        BoundKind::KCore,
        BoundKind::ColorKCore,
        BoundKind::DoubleKCore,
    ] {
        for branch in [
            BranchPolicy::AlwaysExpand,
            BranchPolicy::AlwaysShrink,
            BranchPolicy::Adaptive,
        ] {
            for order in [
                SearchOrder::Random,
                SearchOrder::Degree,
                SearchOrder::Delta1ThenDelta2,
                SearchOrder::LambdaDelta,
            ] {
                for early in [false, true] {
                    let mut cfg = AlgoConfig::adv_max();
                    cfg.bound = bound;
                    cfg.branch = branch;
                    cfg.order = order;
                    cfg.early_termination = early;
                    let got = find_maximum(&p, &cfg);
                    assert!(got.completed);
                    assert_eq!(
                        got.core.map_or(0, |c| c.len()),
                        reference,
                        "bound={bound:?} branch={branch:?} order={order:?} early={early}"
                    );
                }
            }
        }
    }
}

#[test]
fn lambda_extremes_agree() {
    let p = fixture();
    let reference = enumerate_maximal(&p, &AlgoConfig::adv_enum()).cores;
    for lambda in [0.0, 0.5, 5.0, 100.0] {
        let got = enumerate_maximal(&p, &AlgoConfig::adv_enum().with_lambda(lambda));
        assert_eq!(got.cores, reference, "lambda={lambda}");
        let m = find_maximum(&p, &AlgoConfig::adv_max().with_lambda(lambda));
        assert_eq!(
            m.core.map_or(0, |c| c.len()),
            reference.iter().map(KrCore::len).max().unwrap(),
            "lambda={lambda}"
        );
    }
}

#[test]
fn random_seeds_agree() {
    let p = fixture();
    let reference = enumerate_maximal(&p, &AlgoConfig::adv_enum()).cores;
    for seed in 0..8 {
        let mut cfg = AlgoConfig::adv_enum().with_order(SearchOrder::Random);
        cfg.seed = seed;
        assert_eq!(enumerate_maximal(&p, &cfg).cores, reference, "seed={seed}");
    }
}
