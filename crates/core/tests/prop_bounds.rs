//! Property tests pitting the size upper bounds against brute force.
//!
//! Theorem 7 says `|R| ≤ k'max + 1` where `k'max` is the largest `k'` of
//! any (k,k')-core. We verify the implementation of Algorithm 6 against a
//! subset-enumeration oracle for the *true* `k'max`, and all bounds
//! against the true maximum (k,r)-core size.

use kr_core::bounds::{color_bound, double_kcore_bound, sim_kcore_bound, size_upper_bound};
use kr_core::component::LocalComponent;
use kr_core::search::SearchState;
use kr_core::BoundKind;
use kr_graph::VertexId;
use proptest::prelude::*;

fn arb_component(n_max: usize) -> impl Strategy<Value = LocalComponent> {
    (3..=n_max).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (
            proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..=pairs.min(30)),
            proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..=pairs.min(10)),
            1u32..=3,
        )
            .prop_map(move |(edges, dis_pairs, k)| {
                let mut adj = vec![Vec::new(); n];
                for (u, v) in edges {
                    if u != v && !adj[u as usize].contains(&v) {
                        adj[u as usize].push(v);
                        adj[v as usize].push(u);
                    }
                }
                let mut dis = vec![Vec::new(); n];
                for (u, v) in dis_pairs {
                    if u != v && !dis[u as usize].contains(&v) {
                        dis[u as usize].push(v);
                        dis[v as usize].push(u);
                    }
                }
                LocalComponent::from_parts(adj, dis, k)
            })
    })
}

/// Brute force: the largest `k'` over all vertex subsets `U` with
/// `degmin(J_U) >= k` and `degmin(J'_U) = k'` (Definition 6).
fn brute_kprime_max(comp: &LocalComponent) -> Option<u32> {
    let n = comp.len();
    assert!(n <= 12);
    let mut best: Option<u32> = None;
    'mask: for mask in 1u32..(1u32 << n) {
        let members: Vec<VertexId> = (0..n as VertexId).filter(|&v| mask >> v & 1 == 1).collect();
        let in_set = |v: VertexId| mask >> v & 1 == 1;
        let mut min_simdeg = u32::MAX;
        for &v in &members {
            let deg = comp.neighbors(v).iter().filter(|&&w| in_set(w)).count() as u32;
            if deg < comp.k {
                continue 'mask;
            }
            let disdeg = comp.dissimilar(v).iter().filter(|&&w| in_set(w)).count() as u32;
            let simdeg = members.len() as u32 - 1 - disdeg;
            min_simdeg = min_simdeg.min(simdeg);
        }
        best = Some(best.map_or(min_simdeg, |b| b.max(min_simdeg)));
    }
    best
}

/// Brute force: the largest vertex subset that is pairwise similar, has
/// min degree >= k, and is connected — i.e. the maximum (k,r)-core.
fn brute_max_core(comp: &LocalComponent) -> usize {
    let n = comp.len();
    assert!(n <= 12);
    let mut best = 0usize;
    'mask: for mask in 1u32..(1u32 << n) {
        let members: Vec<VertexId> = (0..n as VertexId).filter(|&v| mask >> v & 1 == 1).collect();
        if members.len() <= best {
            continue;
        }
        let in_set = |v: VertexId| mask >> v & 1 == 1;
        for &v in &members {
            let deg = comp.neighbors(v).iter().filter(|&&w| in_set(w)).count() as u32;
            if deg < comp.k {
                continue 'mask;
            }
            if comp.dissimilar(v).iter().any(|&w| in_set(w)) {
                continue 'mask;
            }
        }
        // Connectivity.
        let mut seen = vec![false; n];
        let mut stack = vec![members[0]];
        seen[members[0] as usize] = true;
        let mut count = 0;
        while let Some(v) = stack.pop() {
            count += 1;
            for &w in comp.neighbors(v) {
                if in_set(w) && !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        if count == members.len() {
            best = members.len();
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Algorithm 6's result dominates the true k'max (it is an upper-bound
    /// computation; equality is typical but not required by Theorem 7).
    #[test]
    fn alg6_dominates_true_kprime(comp in arb_component(9)) {
        let st = SearchState::new(&comp);
        let bound = double_kcore_bound(&st);
        // When no qualifying subset exists the bound is unconstrained.
        if let Some(kp) = brute_kprime_max(&comp) {
            prop_assert!(
                bound > kp,
                "Alg 6 returned {bound} < true k'max+1 = {}",
                kp + 1
            );
        }
    }

    /// Every bound dominates the true maximum (k,r)-core size.
    #[test]
    fn all_bounds_dominate_true_maximum(comp in arb_component(10)) {
        let mut st = SearchState::new(&comp);
        if !st.prune_root() {
            return Ok(());
        }
        let truth = brute_max_core(&comp);
        for bound in [
            BoundKind::Naive,
            BoundKind::Color,
            BoundKind::KCore,
            BoundKind::ColorKCore,
            BoundKind::DoubleKCore,
        ] {
            let ub = size_upper_bound(&st, bound) as usize;
            prop_assert!(ub >= truth, "{bound:?}: {ub} < {truth}");
        }
    }

    /// Tightness ordering: DoubleKCore <= KCore (the structural constraint
    /// can only remove vertices) and ColorKCore <= min of its parts.
    #[test]
    fn tightness_ordering(comp in arb_component(10)) {
        let st = SearchState::new(&comp);
        prop_assert!(double_kcore_bound(&st) <= sim_kcore_bound(&st));
        let ck = size_upper_bound(&st, BoundKind::ColorKCore);
        prop_assert_eq!(ck, color_bound(&st).min(sim_kcore_bound(&st)));
    }
}
