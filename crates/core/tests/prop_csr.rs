//! CSR arena equivalence: a component built through the CSR path must
//! answer every query identically to a reference nested-`Vec` model built
//! side by side from the same random input — both for `from_parts`
//! (random lists) and for `build` (random graph + real similarity
//! oracle).

use kr_core::component::LocalComponent;
use kr_graph::{Graph, VertexId};
use kr_similarity::{AttributeTable, DissimMode, Metric, SimilarityOracle, TableOracle, Threshold};
use proptest::prelude::*;

/// Reference model: plain nested, sorted, deduplicated, symmetric lists.
struct Reference {
    adj: Vec<Vec<VertexId>>,
    dis: Vec<Vec<VertexId>>,
}

impl Reference {
    fn from_pairs(n: usize, edges: &[(VertexId, VertexId)], dis: &[(VertexId, VertexId)]) -> Self {
        let build = |pairs: &[(VertexId, VertexId)]| {
            let mut lists: Vec<Vec<VertexId>> = vec![Vec::new(); n];
            for &(u, v) in pairs {
                if u != v && !lists[u as usize].contains(&v) {
                    lists[u as usize].push(v);
                    lists[v as usize].push(u);
                }
            }
            for l in &mut lists {
                l.sort_unstable();
            }
            lists
        };
        Reference {
            adj: build(edges),
            dis: build(dis),
        }
    }

    fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    fn num_dis_pairs(&self) -> usize {
        self.dis.iter().map(Vec::len).sum::<usize>() / 2
    }
}

fn assert_component_matches(comp: &LocalComponent, reference: &Reference, n: usize) {
    assert_eq!(comp.len(), n);
    assert_eq!(comp.num_edges(), reference.num_edges());
    assert_eq!(comp.max_degree(), reference.max_degree());
    assert_eq!(comp.num_dissimilar_pairs, reference.num_dis_pairs());
    for u in 0..n as VertexId {
        assert_eq!(
            comp.neighbors(u),
            reference.adj[u as usize].as_slice(),
            "neighbors({u})"
        );
        assert_eq!(
            comp.dissimilar(u),
            reference.dis[u as usize].as_slice(),
            "dissimilar({u})"
        );
        for v in 0..n as VertexId {
            assert_eq!(
                comp.has_edge(u, v),
                reference.adj[u as usize].contains(&v),
                "has_edge({u},{v})"
            );
            assert_eq!(
                comp.are_dissimilar(u, v),
                reference.dis[u as usize].contains(&v),
                "are_dissimilar({u},{v})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `from_parts` on random (possibly duplicated, unsorted) lists equals
    /// the nested-Vec reference on every accessor.
    #[test]
    fn from_parts_matches_nested_reference(
        n in 2usize..16,
        edges in proptest::collection::vec((0u32..16, 0u32..16), 0..40),
        dis_pairs in proptest::collection::vec((0u32..16, 0u32..16), 0..20),
    ) {
        let clamp = |pairs: &[(VertexId, VertexId)]| -> Vec<(VertexId, VertexId)> {
            pairs
                .iter()
                .map(|&(u, v)| (u % n as VertexId, v % n as VertexId))
                .filter(|&(u, v)| u != v)
                .collect()
        };
        let edges = clamp(&edges);
        let dis_pairs = clamp(&dis_pairs);
        let reference = Reference::from_pairs(n, &edges, &dis_pairs);
        let comp = LocalComponent::from_parts(reference.adj.clone(), reference.dis.clone(), 2);
        assert_component_matches(&comp, &reference, n);
    }

    /// `from_parts` repairs an asymmetric dissimilarity input into the
    /// same component the symmetric closure produces.
    #[test]
    fn from_parts_symmetrizes_like_closure(
        n in 2usize..12,
        dis_pairs in proptest::collection::vec((0u32..12, 0u32..12), 0..16),
    ) {
        let dis_pairs: Vec<(VertexId, VertexId)> = dis_pairs
            .iter()
            .map(|&(u, v)| (u % n as VertexId, v % n as VertexId))
            .filter(|&(u, v)| u != v)
            .collect();
        // One-sided input: only u's row lists v.
        let mut one_sided: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for &(u, v) in &dis_pairs {
            one_sided[u as usize].push(v);
        }
        let reference = Reference::from_pairs(n, &[], &dis_pairs);
        let comp = LocalComponent::from_parts(vec![Vec::new(); n], one_sided, 1);
        for u in 0..n as VertexId {
            prop_assert_eq!(comp.dissimilar(u), reference.dis[u as usize].as_slice());
        }
        prop_assert_eq!(comp.num_dissimilar_pairs, reference.num_dis_pairs());
    }

    /// `build` over a random graph and a real Euclidean oracle equals a
    /// brute-force reference derived directly from the graph and oracle.
    #[test]
    fn build_matches_graph_and_oracle(
        n in 3usize..14,
        edges in proptest::collection::vec((0u32..14, 0u32..14), 0..50),
        coords in proptest::collection::vec((0.0f64..20.0, 0.0f64..20.0), 14),
        r in 1.0f64..15.0,
    ) {
        let edges: Vec<(VertexId, VertexId)> = edges
            .iter()
            .map(|&(u, v)| (u % n as VertexId, v % n as VertexId))
            .filter(|&(u, v)| u != v)
            .collect();
        let graph = Graph::from_edges(n, &edges);
        let oracle = TableOracle::new(
            AttributeTable::points(coords[..n].to_vec()),
            Metric::Euclidean,
            Threshold::MaxDistance(r),
        );
        // Members = all vertices, so local id == global id.
        let members: Vec<VertexId> = (0..n as VertexId).collect();
        let comp = LocalComponent::build(&graph, &oracle, &members, 2, DissimMode::Auto);
        let dis_pairs: Vec<(VertexId, VertexId)> = (0..n as VertexId)
            .flat_map(|u| ((u + 1)..n as VertexId).map(move |v| (u, v)))
            .filter(|&(u, v)| !oracle.is_similar(u, v))
            .collect();
        let reference = Reference::from_pairs(n, &edges, &dis_pairs);
        assert_component_matches(&comp, &reference, n);
    }
}
