//! Correctness of the (k,r)-core decomposition index: on random
//! instances and random `(k, r)` pairs, the candidate set it resolves is
//! a sound superset of the preprocessed k-core, and running the engines
//! over candidate-restricted preprocessing yields results vertex-set
//! identical to the from-scratch path.

use kr_core::{
    enumerate_maximal_prepared, find_maximum_prepared, AlgoConfig, DecompositionIndex,
    ProblemInstance,
};
use kr_graph::{Graph, VertexId};
use kr_similarity::{AttributeTable, Metric, Threshold};
use proptest::prelude::*;

/// Random Euclidean instance plus a random query `(k, r)` — `r` ranges
/// past both ends of the position spread so queries land inside, between,
/// and outside the index's r-bands.
fn arb_distance_case() -> impl Strategy<Value = (ProblemInstance, Vec<f64>)> {
    (5usize..=12).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        (
            proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..=max_edges.min(40)),
            proptest::collection::vec(0.0f64..10.0, n),
            1u32..=3,
            0.0f64..12.0,
            proptest::collection::vec(0.0f64..12.0, 0..6),
        )
            .prop_map(move |(edges, xs, k, r, bands)| {
                let g = Graph::from_edges(n, &edges);
                let pts = xs.into_iter().map(|x| (x, 0.0)).collect();
                let p = ProblemInstance::new(
                    g,
                    AttributeTable::points(pts),
                    Metric::Euclidean,
                    Threshold::MaxDistance(r),
                    k,
                );
                (p, bands)
            })
    })
}

/// Random weighted-Jaccard instance (similarity thresholds shrink the
/// filtered graph as `r` grows — the opposite band-selection rule).
fn arb_similarity_case() -> impl Strategy<Value = (ProblemInstance, Vec<f64>)> {
    (5usize..=10).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..30),
            proptest::collection::vec(0u32..4, n),
            1u32..=2,
            0.0f64..1.0,
            proptest::collection::vec(0.0f64..1.0, 0..6),
        )
            .prop_map(move |(edges, seeds, k, r, bands)| {
                let lists: Vec<Vec<(u32, f64)>> = seeds
                    .iter()
                    .map(|&s| match s {
                        0 => vec![(0, 2.0), (1, 1.0)],
                        1 => vec![(0, 1.0), (1, 2.0)],
                        2 => vec![(2, 2.0), (3, 1.0)],
                        _ => vec![(1, 1.0), (2, 1.0)],
                    })
                    .collect();
                let p = ProblemInstance::new(
                    Graph::from_edges(n, &edges),
                    AttributeTable::keywords(lists),
                    Metric::WeightedJaccard,
                    Threshold::MinSimilarity(r),
                    k,
                );
                (p, bands)
            })
    })
}

/// The two indexes every case is checked against: the default
/// quantile-banded build and a build over the case's arbitrary bands
/// (including the empty-band, structural-fallback-only index).
fn indexes_for(p: &ProblemInstance, bands: &[f64]) -> Vec<DecompositionIndex> {
    vec![
        DecompositionIndex::build_default(p.graph(), p.oracle()),
        DecompositionIndex::build(p.graph(), p.oracle(), bands),
    ]
}

fn check_case(p: &ProblemInstance, bands: &[f64]) -> Result<(), TestCaseError> {
    let threshold = p.oracle().threshold();
    let reference = p.preprocess();
    let ref_cores = enumerate_maximal_prepared(&reference, &AlgoConfig::adv_enum()).cores;
    let ref_max = find_maximum_prepared(&reference, &AlgoConfig::adv_max())
        .core
        .map(|c| c.len());
    for index in indexes_for(p, bands) {
        let cand = index.candidates(p.k(), threshold);
        // Soundness: the candidate set covers the preprocessed k-core.
        for v in p.preprocessed_core() {
            prop_assert!(
                cand.vertices.contains(&v),
                "core vertex {v} missing from candidates (band {:?})",
                cand.band
            );
        }
        // Identity: engines over candidate-restricted preprocessing give
        // the same cores, in the same order, as the from-scratch path.
        let restricted = p.preprocess_with_candidates(&cand.vertices);
        let got_cores = enumerate_maximal_prepared(&restricted, &AlgoConfig::adv_enum()).cores;
        prop_assert_eq!(&got_cores, &ref_cores);
        let got_max = find_maximum_prepared(&restricted, &AlgoConfig::adv_max())
            .core
            .map(|c| c.len());
        prop_assert_eq!(got_max, ref_max);
        // Roundtripping the index through its snapshot section changes
        // nothing about what it resolves.
        let decoded = DecompositionIndex::from_section_bytes(&index.to_section_bytes())
            .expect("section roundtrip");
        prop_assert_eq!(decoded.candidates(p.k(), threshold), cand);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Distance-threshold instances (Euclidean / Gowalla-style).
    #[test]
    fn index_assisted_identical_distance(case in arb_distance_case()) {
        let (p, bands) = case;
        check_case(&p, &bands)?;
    }

    /// Similarity-threshold instances (weighted Jaccard / DBLP-style).
    #[test]
    fn index_assisted_identical_similarity(case in arb_similarity_case()) {
        let (p, bands) = case;
        check_case(&p, &bands)?;
    }
}
