//! Edge-case integration tests for the algorithm family.

use kr_core::{
    clique_based_maximal, enumerate_maximal, find_maximum, AlgoConfig, KrCore, ProblemInstance,
};
use kr_graph::{Graph, GraphBuilder, VertexId};
use kr_similarity::{AttributeTable, Metric, Threshold};

fn geo_instance(
    n: usize,
    edges: &[(VertexId, VertexId)],
    pts: Vec<(f64, f64)>,
    k: u32,
    r: f64,
) -> ProblemInstance {
    ProblemInstance::new(
        Graph::from_edges(n, edges),
        AttributeTable::points(pts),
        Metric::Euclidean,
        Threshold::MaxDistance(r),
        k,
    )
}

#[test]
fn empty_graph_no_cores() {
    let p = geo_instance(0, &[], vec![], 1, 1.0);
    assert!(enumerate_maximal(&p, &AlgoConfig::adv_enum())
        .cores
        .is_empty());
    assert!(find_maximum(&p, &AlgoConfig::adv_max()).core.is_none());
    assert!(clique_based_maximal(&p).is_empty());
}

#[test]
fn edgeless_graph_no_cores() {
    let p = geo_instance(5, &[], vec![(0.0, 0.0); 5], 1, 1.0);
    assert!(enumerate_maximal(&p, &AlgoConfig::adv_enum())
        .cores
        .is_empty());
}

#[test]
fn k1_single_edge() {
    // Two similar, adjacent vertices form a (1,r)-core.
    let p = geo_instance(2, &[(0, 1)], vec![(0.0, 0.0), (0.5, 0.0)], 1, 1.0);
    let res = enumerate_maximal(&p, &AlgoConfig::adv_enum());
    assert_eq!(res.cores, vec![KrCore::new(vec![0, 1])]);
    assert_eq!(
        find_maximum(&p, &AlgoConfig::adv_max()).core.unwrap().len(),
        2
    );
}

#[test]
fn k1_dissimilar_edge_is_nothing() {
    let p = geo_instance(2, &[(0, 1)], vec![(0.0, 0.0), (100.0, 0.0)], 1, 1.0);
    assert!(enumerate_maximal(&p, &AlgoConfig::adv_enum())
        .cores
        .is_empty());
}

#[test]
fn whole_clique_when_all_similar() {
    let mut b = GraphBuilder::new(6);
    for u in 0..6 {
        for v in (u + 1)..6 {
            b.add_edge(u, v);
        }
    }
    let p = ProblemInstance::new(
        b.build(),
        AttributeTable::points(vec![(0.0, 0.0); 6]),
        Metric::Euclidean,
        Threshold::MaxDistance(1.0),
        3,
    );
    let res = enumerate_maximal(&p, &AlgoConfig::adv_enum());
    assert_eq!(res.cores.len(), 1);
    assert_eq!(res.cores[0].len(), 6);
}

#[test]
fn exact_threshold_boundary_is_similar() {
    // Distance exactly r counts as similar (footnote 1 of the paper:
    // "not larger than").
    let p = geo_instance(
        3,
        &[(0, 1), (1, 2), (2, 0)],
        vec![(0.0, 0.0), (5.0, 0.0), (0.0, 5.0)],
        2,
        // Max pairwise distance is 5*sqrt(2); set r exactly there.
        5.0 * std::f64::consts::SQRT_2,
    );
    let res = enumerate_maximal(&p, &AlgoConfig::adv_enum());
    assert_eq!(res.cores.len(), 1);
    assert_eq!(res.cores[0].len(), 3);
}

#[test]
fn k_larger_than_any_degree() {
    let p = geo_instance(4, &[(0, 1), (1, 2), (2, 3)], vec![(0.0, 0.0); 4], 3, 1.0);
    assert!(enumerate_maximal(&p, &AlgoConfig::adv_enum())
        .cores
        .is_empty());
    assert!(find_maximum(&p, &AlgoConfig::adv_max()).core.is_none());
}

#[test]
fn star_graph_never_qualifies_for_k2() {
    // A star has min degree 1 everywhere except the hub.
    let p = geo_instance(
        5,
        &[(0, 1), (0, 2), (0, 3), (0, 4)],
        vec![(0.0, 0.0); 5],
        2,
        1.0,
    );
    assert!(enumerate_maximal(&p, &AlgoConfig::adv_enum())
        .cores
        .is_empty());
}

#[test]
fn two_disjoint_cliques_two_cores() {
    let mut edges = Vec::new();
    for base in [0u32, 4] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((base + i, base + j));
            }
        }
    }
    let p = geo_instance(8, &edges, vec![(0.0, 0.0); 8], 3, 1.0);
    let res = enumerate_maximal(&p, &AlgoConfig::adv_enum());
    assert_eq!(res.cores.len(), 2);
    // Maximum is either of the two (both size 4).
    assert_eq!(
        find_maximum(&p, &AlgoConfig::adv_max()).core.unwrap().len(),
        4
    );
}

#[test]
fn figure1_style_overlap() {
    // Two 4-cliques sharing two vertices; similarity splits them apart
    // but the shared vertices appear in both maximal cores.
    let edges = [
        (0u32, 1),
        (0, 2),
        (0, 3),
        (1, 2),
        (1, 3),
        (2, 3), // left clique {0,1,2,3}
        (2, 4),
        (2, 5),
        (3, 4),
        (3, 5),
        (4, 5), // right clique {2,3,4,5}
    ];
    let pts = vec![
        (0.0, 0.0),
        (1.0, 0.0),
        (3.0, 0.0), // shared
        (3.0, 1.0), // shared
        (6.0, 0.0),
        (6.0, 1.0),
    ];
    let p = geo_instance(6, &edges, pts, 2, 4.0);
    let res = enumerate_maximal(&p, &AlgoConfig::adv_enum());
    assert_eq!(res.cores.len(), 2, "{:?}", res.cores);
    let shared: Vec<VertexId> = res.cores[0]
        .vertices
        .iter()
        .copied()
        .filter(|v| res.cores[1].vertices.contains(v))
        .collect();
    assert_eq!(shared, vec![2, 3]);
}

#[test]
fn keyword_zero_weight_lists() {
    // Vertices with empty keyword lists are similar to each other (both
    // empty => similarity 1 by convention) but dissimilar to everyone else.
    let p = ProblemInstance::new(
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]),
        AttributeTable::keywords(vec![vec![], vec![], vec![(1, 1.0)], vec![(1, 1.0)]]),
        Metric::WeightedJaccard,
        Threshold::MinSimilarity(0.5),
        1,
    );
    let res = enumerate_maximal(&p, &AlgoConfig::adv_enum());
    // {0,1} (both empty) and {2,3} (same keyword) — both adjacent pairs.
    assert_eq!(res.cores.len(), 2);
}

#[test]
fn stats_are_populated() {
    let p = geo_instance(
        6,
        &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
        vec![
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (50.0, 0.0),
            (51.0, 0.0),
            (50.0, 1.0),
        ],
        2,
        5.0,
    );
    let res = enumerate_maximal(&p, &AlgoConfig::adv_enum());
    assert!(res.stats.nodes >= 1);
    assert!(res.stats.leaves >= 1);
    assert_eq!(res.cores.len(), 2);
}
