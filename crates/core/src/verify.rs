//! Independent result verification.
//!
//! Checks results straight against Definitions 1–4 (structure constraint,
//! similarity constraint, connectivity, maximality) with no shared code
//! with the search engine — used by tests as an oracle and available to
//! users for auditing.

use crate::problem::ProblemInstance;
use crate::result::KrCore;
use kr_graph::components::is_connected;
use kr_graph::VertexId;
use kr_similarity::SimilarityOracle;

/// Definition 3: is `core` a (k,r)-core of the instance?
pub fn is_kr_core(problem: &ProblemInstance, core: &KrCore) -> bool {
    let vs = &core.vertices;
    if vs.len() <= problem.k() as usize {
        return false; // need degree >= k inside, so at least k+1 vertices
    }
    let g = problem.graph();
    let inset: std::collections::HashSet<VertexId> = vs.iter().copied().collect();
    // Structure constraint.
    for &v in vs {
        let deg = g.neighbors(v).iter().filter(|u| inset.contains(u)).count();
        if (deg as u32) < problem.k() {
            return false;
        }
    }
    // Similarity constraint.
    for i in 0..vs.len() {
        for j in (i + 1)..vs.len() {
            if !problem.oracle().is_similar(vs[i], vs[j]) {
                return false;
            }
        }
    }
    // Connectivity.
    is_connected(g, vs)
}

/// Definition 4: is `core` a *maximal* (k,r)-core? Checked by brute force:
/// try to grow it by every subset of candidate vertices that are similar to
/// all members — exponential, test-scale only (candidate pools ≤ 20).
pub fn is_maximal_kr_core(problem: &ProblemInstance, core: &KrCore) -> bool {
    if !is_kr_core(problem, core) {
        return false;
    }
    let g = problem.graph();
    let inset: std::collections::HashSet<VertexId> = core.vertices.iter().copied().collect();
    // Candidates: vertices similar to every member.
    let candidates: Vec<VertexId> = (0..g.num_vertices() as VertexId)
        .filter(|v| !inset.contains(v))
        .filter(|&v| {
            core.vertices
                .iter()
                .all(|&u| problem.oracle().is_similar(u, v))
        })
        .collect();
    assert!(
        candidates.len() <= 20,
        "brute-force maximality check infeasible: {} candidates",
        candidates.len()
    );
    // Any non-empty subset U of mutually-similar candidates with
    // core ∪ U a (k,r)-core refutes maximality.
    for mask in 1u32..(1u32 << candidates.len()) {
        let mut vs = core.vertices.clone();
        for (i, &c) in candidates.iter().enumerate() {
            if mask >> i & 1 == 1 {
                vs.push(c);
            }
        }
        if is_kr_core(problem, &KrCore::new(vs)) {
            return false;
        }
    }
    true
}

/// Verifies an enumeration answer: every entry is a (k,r)-core and no entry
/// contains another. Returns an error description on the first violation.
pub fn verify_maximal_family(problem: &ProblemInstance, cores: &[KrCore]) -> Result<(), String> {
    for (i, c) in cores.iter().enumerate() {
        if !is_kr_core(problem, c) {
            return Err(format!("entry {i} is not a (k,r)-core: {:?}", c.vertices));
        }
    }
    for i in 0..cores.len() {
        for j in 0..cores.len() {
            if i != j && cores[i].is_subset_of(&cores[j]) {
                return Err(format!(
                    "entry {i} ⊆ entry {j}: {:?} ⊆ {:?}",
                    cores[i].vertices, cores[j].vertices
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kr_graph::Graph;
    use kr_similarity::{AttributeTable, Metric, Threshold};

    fn toy() -> ProblemInstance {
        // Two triangles joined by an edge; left triangle near origin, right
        // far away.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let pts = vec![
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (100.0, 0.0),
            (101.0, 0.0),
            (100.0, 1.0),
        ];
        ProblemInstance::new(
            g,
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(5.0),
            2,
        )
    }

    #[test]
    fn triangle_is_core() {
        let p = toy();
        assert!(is_kr_core(&p, &KrCore::new(vec![0, 1, 2])));
        assert!(is_kr_core(&p, &KrCore::new(vec![3, 4, 5])));
    }

    #[test]
    fn dissimilar_union_not_core() {
        let p = toy();
        assert!(!is_kr_core(&p, &KrCore::new(vec![0, 1, 2, 3, 4, 5])));
    }

    #[test]
    fn too_small_not_core() {
        let p = toy();
        assert!(!is_kr_core(&p, &KrCore::new(vec![0, 1])));
    }

    #[test]
    fn disconnected_not_core() {
        // Same attributes everywhere, two disjoint triangles.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let p = ProblemInstance::new(
            g,
            AttributeTable::points(vec![(0.0, 0.0); 6]),
            Metric::Euclidean,
            Threshold::MaxDistance(5.0),
            2,
        );
        assert!(!is_kr_core(&p, &KrCore::new(vec![0, 1, 2, 3, 4, 5])));
        assert!(is_kr_core(&p, &KrCore::new(vec![0, 1, 2])));
    }

    #[test]
    fn maximality_brute_force() {
        let p = toy();
        assert!(is_maximal_kr_core(&p, &KrCore::new(vec![0, 1, 2])));
        // A sub-triangle of a 4-clique is not maximal.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let p4 = ProblemInstance::new(
            g,
            AttributeTable::points(vec![(0.0, 0.0); 4]),
            Metric::Euclidean,
            Threshold::MaxDistance(5.0),
            2,
        );
        assert!(!is_maximal_kr_core(&p4, &KrCore::new(vec![0, 1, 2])));
        assert!(is_maximal_kr_core(&p4, &KrCore::new(vec![0, 1, 2, 3])));
    }

    #[test]
    fn verify_family_detects_containment() {
        let p = toy();
        let fam = vec![KrCore::new(vec![0, 1, 2]), KrCore::new(vec![3, 4, 5])];
        assert!(verify_maximal_family(&p, &fam).is_ok());
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let p4 = ProblemInstance::new(
            g,
            AttributeTable::points(vec![(0.0, 0.0); 4]),
            Metric::Euclidean,
            Threshold::MaxDistance(5.0),
            2,
        );
        let bad = vec![KrCore::new(vec![0, 1, 2, 3]), KrCore::new(vec![0, 1, 2])];
        assert!(verify_maximal_family(&p4, &bad).is_err());
    }
}
