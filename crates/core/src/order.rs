//! Search orders (Section 7).
//!
//! Two decisions are made at every internal node: *which* vertex of
//! `C \ SF(C)` to branch on, and (for the maximum search) *which branch*
//! to explore first. Section 7.1 proposes two measurements per candidate
//! branch:
//!
//! * `Δ1` — the fraction of dissimilar pairs of `C` the branch removes
//!   (progress toward the similarity constraint);
//! * `Δ2` — the fraction of edges of `M ∪ C` the branch removes (loss of
//!   structure / solution mass).
//!
//! Exact values would require running the full prune cascade; the paper
//! (and we) estimate them by a *two-hop* simulation around the chosen
//! vertex: first-hop removals are exact, second-hop removals count
//! candidates whose degree provably falls below `k` given the first hop.

use crate::config::{AlgoConfig, SearchOrder};
use crate::search::{SearchState, Status};
use kr_graph::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-branch `Δ1`/`Δ2` estimates for one candidate vertex.
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchEstimate {
    /// Estimated fraction of `DP(C)` removed.
    pub delta1: f64,
    /// Estimated fraction of `|E(M ∪ C)|` removed.
    pub delta2: f64,
}

/// Estimates for both branches of a candidate.
#[derive(Debug, Clone, Copy, Default)]
pub struct VertexEstimate {
    /// Expand branch (`u → M`, dissimilar candidates evicted).
    pub expand: BranchEstimate,
    /// Shrink branch (`u` removed).
    pub shrink: BranchEstimate,
}

/// Which branch to explore first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirstBranch {
    /// Expand before shrink.
    Expand,
    /// Shrink before expand.
    Shrink,
}

/// Stateful vertex chooser (owns the RNG for [`SearchOrder::Random`] and
/// scratch buffers for the estimators).
pub struct Chooser {
    order: SearchOrder,
    lambda: f64,
    rng: StdRng,
    /// Scratch: per-vertex degree-drop accumulator for the 2-hop pass.
    drop: Vec<u32>,
    /// Scratch: stamp marking first-hop removals.
    stamp: Vec<u32>,
    stamp_gen: u32,
}

impl Chooser {
    /// Builds a chooser from a config.
    pub fn new(cfg: &AlgoConfig, n: usize) -> Self {
        Chooser {
            order: cfg.order,
            lambda: cfg.lambda,
            rng: StdRng::seed_from_u64(cfg.seed),
            drop: vec![0; n],
            stamp: vec![0; n],
            stamp_gen: 0,
        }
    }

    /// Picks the next branching vertex among `C \ SF(C)` (or all of `C`
    /// when `include_sf` — used by configurations without Theorem 4).
    /// Returns the vertex and the preferred branch under the
    /// `λΔ1 − Δ2` policy (callers with fixed policies ignore it).
    pub fn choose(
        &mut self,
        st: &SearchState<'_>,
        include_sf: bool,
    ) -> Option<(VertexId, FirstBranch)> {
        let candidates: Vec<VertexId> = (0..st.comp.len() as VertexId)
            .filter(|&v| st.status(v) == Status::Cand && (include_sf || st.dp_c(v) > 0))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        match self.order {
            SearchOrder::Random => {
                let v = candidates[self.rng.random_range(0..candidates.len())];
                Some((v, FirstBranch::Expand))
            }
            SearchOrder::Degree => {
                let v = candidates
                    .into_iter()
                    .max_by_key(|&v| st.deg_mc(v))
                    .expect("non-empty");
                Some((v, FirstBranch::Expand))
            }
            SearchOrder::Delta1 => {
                self.choose_scored(st, candidates, |e| (e.expand.delta1 + e.shrink.delta1, 0.0))
            }
            SearchOrder::Delta2 => self.choose_scored(st, candidates, |e| {
                (-(e.expand.delta2 + e.shrink.delta2), 0.0)
            }),
            SearchOrder::Delta1ThenDelta2 => self.choose_scored(st, candidates, |e| {
                (
                    e.expand.delta1 + e.shrink.delta1,
                    -(e.expand.delta2 + e.shrink.delta2),
                )
            }),
            SearchOrder::LambdaDelta => {
                let lambda = self.lambda;
                let mut best: Option<(VertexId, f64, FirstBranch)> = None;
                for &v in &candidates {
                    let est = self.estimate(st, v);
                    let se = lambda * est.expand.delta1 - est.expand.delta2;
                    let ss = lambda * est.shrink.delta1 - est.shrink.delta2;
                    let (score, first) = if se >= ss {
                        (se, FirstBranch::Expand)
                    } else {
                        (ss, FirstBranch::Shrink)
                    };
                    if best.is_none_or(|(_, bs, _)| score > bs) {
                        best = Some((v, score, first));
                    }
                }
                best.map(|(v, _, f)| (v, f))
            }
        }
    }

    /// Lexicographic `(primary, secondary)` maximization over candidates.
    fn choose_scored(
        &mut self,
        st: &SearchState<'_>,
        candidates: Vec<VertexId>,
        score: impl Fn(&VertexEstimate) -> (f64, f64),
    ) -> Option<(VertexId, FirstBranch)> {
        let mut best: Option<(VertexId, (f64, f64))> = None;
        for &v in &candidates {
            let est = self.estimate(st, v);
            let s = score(&est);
            let better = match best {
                None => true,
                Some((_, bs)) => s.0 > bs.0 + 1e-12 || ((s.0 - bs.0).abs() <= 1e-12 && s.1 > bs.1),
            };
            if better {
                best = Some((v, s));
            }
        }
        best.map(|(v, _)| (v, FirstBranch::Expand))
    }

    /// Two-hop `Δ1`/`Δ2` estimates for branching on `v`.
    pub fn estimate(&mut self, st: &SearchState<'_>, v: VertexId) -> VertexEstimate {
        let dp_total = st.dp_c_total().max(1) as f64;
        let edges_total = st.edges_mc().max(1) as f64;
        // Expand: first-hop removals are the candidates dissimilar to v
        // (streamed — ordering heuristics never materialize lazy rows).
        let mut first_expand: Vec<VertexId> = Vec::new();
        st.comp.for_each_dissimilar(v, |w| {
            if st.status(w) == Status::Cand {
                first_expand.push(w);
            }
        });
        let (dp_e, ed_e) = self.two_hop(st, &first_expand, None);
        // Shrink: the first-hop removal is v itself.
        let (dp_s, ed_s) = self.two_hop(st, &[v], None);
        VertexEstimate {
            expand: BranchEstimate {
                delta1: dp_e / dp_total,
                delta2: ed_e / edges_total,
            },
            shrink: BranchEstimate {
                delta1: dp_s / dp_total,
                delta2: ed_s / edges_total,
            },
        }
    }

    /// Counts dissimilar pairs and edges removed by deleting `first` and
    /// then every candidate neighbor whose degree falls below `k`
    /// (one extra hop). Double counts inside the removed set are corrected
    /// for the first hop; the second hop is a heuristic over-count, which
    /// is fine for ordering purposes.
    fn two_hop(
        &mut self,
        st: &SearchState<'_>,
        first: &[VertexId],
        _unused: Option<()>,
    ) -> (f64, f64) {
        self.stamp_gen += 1;
        let gen = self.stamp_gen;
        let mut dp_removed = 0i64;
        let mut edges_removed = 0i64;
        for &d in first {
            self.stamp[d as usize] = gen;
        }
        // First hop: exact within-set corrections.
        for &d in first {
            dp_removed += st.dp_c(d) as i64;
            edges_removed += st.deg_mc(d) as i64;
            // Pairs/edges fully inside the removed set are counted twice.
            st.comp.for_each_dissimilar(d, |w| {
                if self.stamp[w as usize] == gen && w > d && st.status(w) == Status::Cand {
                    dp_removed -= 1;
                }
            });
            for &w in st.comp.neighbors(d) {
                if self.stamp[w as usize] == gen && w > d {
                    edges_removed -= 1;
                }
            }
        }
        // Second hop: accumulate degree drops on surviving neighbors.
        let mut touched: Vec<VertexId> = Vec::new();
        for &d in first {
            for &w in st.comp.neighbors(d) {
                let wi = w as usize;
                if self.stamp[wi] != gen && matches!(st.status(w), Status::Cand) {
                    if self.drop[wi] == 0 {
                        touched.push(w);
                    }
                    self.drop[wi] += 1;
                }
            }
        }
        for &w in &touched {
            let wi = w as usize;
            if st.deg_mc(w).saturating_sub(self.drop[wi]) < st.k {
                // w would be cascaded out as well.
                dp_removed += st.dp_c(w) as i64;
                edges_removed += st.deg_mc(w) as i64;
            }
            self.drop[wi] = 0;
        }
        (dp_removed.max(0) as f64, edges_removed.max(0) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::LocalComponent;
    use crate::config::AlgoConfig;

    /// 4-clique (0..4) + vertex 4 tied to 2,3; dissimilar pair (0,4).
    fn fixture() -> LocalComponent {
        LocalComponent::from_parts(
            vec![
                vec![1, 2, 3],
                vec![0, 2, 3],
                vec![0, 1, 3, 4],
                vec![0, 1, 2, 4],
                vec![2, 3],
            ],
            vec![vec![4], vec![], vec![], vec![], vec![0]],
            2,
        )
    }

    #[test]
    fn chooser_skips_sf_vertices() {
        let comp = fixture();
        let st = SearchState::new(&comp);
        let cfg = AlgoConfig::adv_enum();
        let mut ch = Chooser::new(&cfg, comp.len());
        let (v, _) = ch.choose(&st, false).unwrap();
        // Only 0 and 4 have dissimilar partners.
        assert!(v == 0 || v == 4, "chose {v}");
    }

    #[test]
    fn chooser_include_sf_allows_all() {
        let comp = fixture();
        let st = SearchState::new(&comp);
        let cfg = AlgoConfig::basic_enum().with_order(SearchOrder::Degree);
        let mut ch = Chooser::new(&cfg, comp.len());
        let (v, _) = ch.choose(&st, true).unwrap();
        // Highest degree overall: 2 or 3 (degree 4).
        assert!(v == 2 || v == 3);
    }

    #[test]
    fn estimates_positive_on_dissimilar_vertex() {
        let comp = fixture();
        let st = SearchState::new(&comp);
        let cfg = AlgoConfig::adv_max();
        let mut ch = Chooser::new(&cfg, comp.len());
        let est = ch.estimate(&st, 0);
        // Expanding 0 evicts 4 -> removes the single dissimilar pair.
        assert!(est.expand.delta1 > 0.99, "delta1 {:?}", est.expand.delta1);
        assert!(est.expand.delta2 > 0.0);
        // Shrinking 0 removes the pair too (0 is one endpoint).
        assert!(est.shrink.delta1 > 0.99);
    }

    #[test]
    fn all_orders_return_some() {
        let comp = fixture();
        let st = SearchState::new(&comp);
        for order in [
            SearchOrder::Random,
            SearchOrder::Degree,
            SearchOrder::Delta1,
            SearchOrder::Delta2,
            SearchOrder::Delta1ThenDelta2,
            SearchOrder::LambdaDelta,
        ] {
            let cfg = AlgoConfig::adv_enum().with_order(order);
            let mut ch = Chooser::new(&cfg, comp.len());
            assert!(ch.choose(&st, false).is_some(), "{order:?}");
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let comp = fixture();
        let st = SearchState::new(&comp);
        let cfg = AlgoConfig::adv_enum().with_order(SearchOrder::Random);
        let mut a = Chooser::new(&cfg, comp.len());
        let mut b = Chooser::new(&cfg, comp.len());
        for _ in 0..5 {
            assert_eq!(
                a.choose(&st, true).unwrap().0,
                b.choose(&st, true).unwrap().0
            );
        }
    }

    #[test]
    fn empty_candidates_none() {
        let comp = LocalComponent::from_parts(vec![vec![1], vec![0]], vec![vec![], vec![]], 1);
        let mut st = SearchState::new(&comp);
        st.set_status(0, Status::Chosen);
        st.set_status(1, Status::Chosen);
        let cfg = AlgoConfig::adv_enum();
        let mut ch = Chooser::new(&cfg, comp.len());
        assert!(ch.choose(&st, true).is_none());
    }
}
