//! Result types and the dedup sink.

use kr_graph::VertexId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One (k,r)-core, as a sorted set of *global* vertex ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KrCore {
    /// Sorted member vertices.
    pub vertices: Vec<VertexId>,
}

impl KrCore {
    /// Builds from any vertex list (sorted + deduped).
    pub fn new(mut vertices: Vec<VertexId>) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        KrCore { vertices }
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Subset test (both sorted).
    pub fn is_subset_of(&self, other: &KrCore) -> bool {
        if self.len() > other.len() {
            return false;
        }
        let mut it = other.vertices.iter();
        'outer: for v in &self.vertices {
            for w in it.by_ref() {
                match w.cmp(v) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }
}

/// Deduplicating collector for enumeration results.
#[derive(Debug, Default)]
pub struct CoreSink {
    seen: HashSet<Vec<VertexId>>,
    cores: Vec<KrCore>,
}

impl CoreSink {
    /// Empty sink.
    pub fn new() -> Self {
        CoreSink::default()
    }

    /// Inserts a core unless an identical vertex set was seen. Returns true
    /// if the core was new.
    pub fn push(&mut self, core: KrCore) -> bool {
        if self.seen.insert(core.vertices.clone()) {
            self.cores.push(core);
            true
        } else {
            false
        }
    }

    /// Number of distinct cores collected.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// True iff no cores collected.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Consumes the sink; returns the distinct cores.
    pub fn into_cores(self) -> Vec<KrCore> {
        self.cores
    }

    /// Consumes the sink; returns only the cores that are maximal within
    /// the collected family (the naive post-filter of Algorithm 1 lines
    /// 6–8).
    pub fn into_maximal(self) -> Vec<KrCore> {
        filter_maximal(self.cores)
    }
}

/// Removes every core strictly contained in another collected core.
pub fn filter_maximal(mut cores: Vec<KrCore>) -> Vec<KrCore> {
    cores.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let mut kept: Vec<KrCore> = Vec::new();
    'outer: for c in cores {
        for k in &kept {
            if c.is_subset_of(k) {
                continue 'outer;
            }
        }
        kept.push(c);
    }
    kept.sort_by(|a, b| a.vertices.cmp(&b.vertices));
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_new_sorts_and_dedups() {
        let c = KrCore::new(vec![3, 1, 3, 2]);
        assert_eq!(c.vertices, vec![1, 2, 3]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn subset_tests() {
        let a = KrCore::new(vec![1, 2]);
        let b = KrCore::new(vec![1, 2, 3]);
        let c = KrCore::new(vec![2, 4]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(!c.is_subset_of(&b));
        assert!(a.is_subset_of(&a));
        assert!(KrCore::new(vec![]).is_subset_of(&a));
    }

    #[test]
    fn sink_dedups() {
        let mut s = CoreSink::new();
        assert!(s.push(KrCore::new(vec![1, 2])));
        assert!(!s.push(KrCore::new(vec![2, 1])));
        assert!(s.push(KrCore::new(vec![1, 3])));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn filter_maximal_removes_contained() {
        let cores = vec![
            KrCore::new(vec![1, 2]),
            KrCore::new(vec![1, 2, 3]),
            KrCore::new(vec![4, 5]),
            KrCore::new(vec![4, 5]),
        ];
        let kept = filter_maximal(cores);
        // {1,2} contained in {1,2,3}; the duplicate {4,5} collapses (a set
        // is a subset of its equal).
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&KrCore::new(vec![1, 2, 3])));
        assert!(kept.contains(&KrCore::new(vec![4, 5])));
    }

    #[test]
    fn filter_maximal_keeps_incomparable() {
        let cores = vec![KrCore::new(vec![1, 2]), KrCore::new(vec![2, 3])];
        assert_eq!(filter_maximal(cores).len(), 2);
    }
}
