//! Enumeration of all maximal (k,r)-cores.
//!
//! One engine drives NaiveEnum (Algorithms 1–2), BasicEnum (+Theorems 2–3),
//! BE+CR (+Theorem 4), BE+CR+ET (+Theorem 5) and AdvEnum (Algorithm 3,
//! +Theorem 6), selected by [`AlgoConfig`] toggles.
//!
//! ### Soundness note (disconnected leaves)
//!
//! Leaf solutions `M ∪ C` may be disconnected; each connected piece is a
//! valid (k,r)-core. The Theorem 6 maximal check consults only the
//! excluded set `E`, which is complete *for cores containing all of `M`*
//! (vertices dropped as dissimilar-to-M can never extend such a core). We
//! therefore emit, at a leaf, exactly the pieces containing all of `M`
//! when the maximal check is on; pieces missing part of `M` are reached
//! through their own canonical branch elsewhere in the tree. Configurations
//! without the maximal check emit every piece and rely on the
//! subset post-filter of Algorithm 1.

use crate::component::LocalComponent;
use crate::config::AlgoConfig;
use crate::early_term::can_terminate;
use crate::maximal::check_maximal_with_order;
use crate::order::Chooser;
use crate::problem::ProblemInstance;
use crate::result::{CoreSink, KrCore};
use crate::search::{Decision, SearchState, SearchStats, Status};
use kr_graph::VertexId;

/// Result of an enumeration run.
#[derive(Debug, Clone)]
pub struct EnumResult {
    /// All maximal (k,r)-cores (global vertex ids, each sorted), sorted
    /// lexicographically.
    pub cores: Vec<KrCore>,
    /// Search statistics summed over components.
    pub stats: SearchStats,
    /// False when the node limit was hit (results incomplete).
    pub completed: bool,
}

impl EnumResult {
    /// Sizes of the cores: `(count, max, average)`.
    pub fn size_summary(&self) -> (usize, usize, f64) {
        let count = self.cores.len();
        let max = self.cores.iter().map(|c| c.len()).max().unwrap_or(0);
        let avg = if count == 0 {
            0.0
        } else {
            self.cores.iter().map(|c| c.len()).sum::<usize>() as f64 / count as f64
        };
        (count, max, avg)
    }
}

/// Enumerates all maximal (k,r)-cores of `problem` under `cfg`.
///
/// With [`AlgoConfig::threads`] ≠ 1 (and candidate pruning on — NaiveEnum
/// has no safe split points), the run is dispatched to the work-stealing
/// engine of [`crate::parallel`], which returns the identical core family.
/// Node-limited runs stay sequential: a per-worker node budget would
/// change what "limit reached" means and break that equivalence.
pub fn enumerate_maximal(problem: &ProblemInstance, cfg: &AlgoConfig) -> EnumResult {
    if parallel_eligible(cfg) {
        return crate::parallel::enumerate_parallel(problem, cfg);
    }
    enumerate_sequential(&problem.preprocess(), cfg)
}

/// [`enumerate_maximal`] over components preprocessed earlier (e.g. by
/// [`ProblemInstance::preprocess`] or pulled from a serving-layer cache):
/// Algorithm 1's initial stage is skipped entirely. The components must
/// stem from the same `(k, r)` the query runs with — preprocessing bakes
/// both the k-core peel and the dissimilarity lists into the arena.
pub fn enumerate_maximal_prepared(comps: &[LocalComponent], cfg: &AlgoConfig) -> EnumResult {
    if parallel_eligible(cfg) {
        return crate::parallel::enumerate_parallel_prepared(comps, cfg);
    }
    enumerate_sequential(comps, cfg)
}

/// [`enumerate_maximal_prepared`] on a caller-provided pool — the
/// serving layer builds **one** pool per query and threads it through
/// the preprocessing it may have to run on a cache miss
/// ([`ProblemInstance::preprocess_on`]) and this search. The pool is
/// ignored when the configuration is sequential-only (`threads == 1`,
/// NaiveEnum, or a node-limited run).
pub fn enumerate_maximal_prepared_on(
    comps: &[LocalComponent],
    cfg: &AlgoConfig,
    pool: &rayon::ThreadPool,
) -> EnumResult {
    if parallel_eligible(cfg) {
        return crate::parallel::enumerate_on(comps, cfg, pool);
    }
    enumerate_sequential(comps, cfg)
}

/// Parallel dispatch guard: NaiveEnum has no safe split points and
/// node-limited runs stay sequential (a per-worker budget would change
/// what "limit reached" means).
fn parallel_eligible(cfg: &AlgoConfig) -> bool {
    cfg.threads != 1 && cfg.prune_candidates && cfg.node_limit.is_none()
}

fn enumerate_sequential(comps: &[LocalComponent], cfg: &AlgoConfig) -> EnumResult {
    let mut stats = SearchStats::default();
    let mut completed = true;
    let mut sink = CoreSink::new();
    // One wall-clock budget for the whole run, shared by all components.
    let deadline = cfg
        .time_limit_ms
        .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));

    let run_one = |comp: &LocalComponent| -> (CoreSink, SearchStats, bool) {
        let mut driver = Driver::new(comp, cfg, deadline).with_streaming();
        driver.run();
        (driver.sink, driver.stats, !driver.aborted)
    };

    if cfg.parallel_components && comps.len() > 1 {
        // One scoped thread per component; join order preserves component
        // order, so the merged result is deterministic.
        let results: Vec<(CoreSink, SearchStats, bool)> = std::thread::scope(|scope| {
            let handles: Vec<_> = comps
                .iter()
                .map(|comp| scope.spawn(|| run_one(comp)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("component worker panicked"))
                .collect()
        });
        for (s, st, ok) in results {
            for c in s.into_cores() {
                sink.push(c);
            }
            merge_stats(&mut stats, st);
            completed &= ok;
        }
    } else {
        for comp in comps {
            let (s, st, ok) = run_one(comp);
            for c in s.into_cores() {
                sink.push(c);
            }
            merge_stats(&mut stats, st);
            completed &= ok;
        }
    }

    // Algorithm 1 lines 6–8: naive maximal post-filter, needed whenever the
    // Theorem 6 check was not active.
    let mut cores = if cfg.maximal_check {
        sink.into_cores()
    } else {
        sink.into_maximal()
    };
    cores.sort_by(|a, b| a.vertices.cmp(&b.vertices));
    EnumResult {
        cores,
        stats,
        completed,
    }
}

pub(crate) fn merge_stats(into: &mut SearchStats, from: SearchStats) {
    into.nodes += from.nodes;
    into.leaves += from.leaves;
    into.early_terminations += from.early_terminations;
    into.bound_prunes += from.bound_prunes;
    into.maximal_checks += from.maximal_checks;
    into.resplits += from.resplits;
    into.resplit_subtasks += from.resplit_subtasks;
}

/// Per-component enumeration driver. `pub(crate)` so the parallel engine
/// ([`crate::parallel`]) can drive frontier generation and subtask replay
/// through the exact same per-node logic.
pub(crate) struct Driver<'a> {
    comp: &'a LocalComponent,
    cfg: &'a AlgoConfig,
    chooser: Chooser,
    pub(crate) sink: CoreSink,
    pub(crate) stats: SearchStats,
    pub(crate) aborted: bool,
    deadline: Option<std::time::Instant>,
    /// Leaf pieces already resolved (emitted or rejected as non-maximal):
    /// the same piece reappears at many leaves, and its maximality verdict
    /// cannot change — the candidate universe only depends on the piece.
    checked: std::collections::HashSet<Vec<VertexId>>,
    /// Streaming hook, armed by [`Self::with_streaming`] for sequential
    /// runs. Parallel task drivers leave it off — cross-task duplicates
    /// are only resolved in the merge phase, which streams instead.
    stream: Option<crate::config::CoreHook>,
    /// Re-split host, armed by [`Self::with_host`] on parallel task
    /// drivers: when the pool starves, pending sibling branches of the
    /// current DFS path are donated as fresh subtasks.
    host: Option<&'a dyn crate::parallel::DonationHost>,
    /// Decision path from the component root to the current node
    /// (prefix decisions included for task drivers).
    path: Vec<Decision>,
    /// One entry per ancestor whose second branch is still pending —
    /// the frontier a re-split donates from.
    slots: Vec<crate::parallel::DonationSlot>,
}

impl<'a> Driver<'a> {
    pub(crate) fn new(
        comp: &'a LocalComponent,
        cfg: &'a AlgoConfig,
        deadline: Option<std::time::Instant>,
    ) -> Self {
        Driver {
            comp,
            cfg,
            chooser: Chooser::new(cfg, comp.len()),
            sink: CoreSink::new(),
            stats: SearchStats::default(),
            aborted: false,
            deadline,
            checked: std::collections::HashSet::new(),
            stream: None,
            host: None,
            path: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// Arms re-splitting on this (parallel task) driver: `host` is polled
    /// at node entry and pending sibling branches of the DFS path are
    /// donated as fresh subtasks when the pool runs dry.
    pub(crate) fn with_host(mut self, host: &'a dyn crate::parallel::DonationHost) -> Self {
        self.host = Some(host);
        self
    }

    /// Arms the [`AlgoConfig::on_core`] hook on this driver. Only honored
    /// with the Theorem 6 maximal check, where every pushed core is
    /// already final (see [`crate::config::CoreHook`]).
    pub(crate) fn with_streaming(mut self) -> Self {
        if self.cfg.maximal_check {
            self.stream = self.cfg.on_core.clone();
        }
        self
    }

    /// Pushes into the dedup sink; a *new* core is also streamed when the
    /// hook is armed.
    fn push_core(&mut self, core: KrCore) {
        match &self.stream {
            Some(hook) => {
                if self.sink.push(core.clone()) {
                    hook.emit(&core);
                }
            }
            None => {
                self.sink.push(core);
            }
        }
    }

    fn run(&mut self) {
        let mut st = SearchState::new(self.comp);
        if self.cfg.prune_candidates {
            if !st.prune_root() {
                return;
            }
            self.advanced_rec(&mut st);
        } else {
            self.naive_rec(&mut st);
        }
    }

    /// Depth-limited AdvEnum descent for the parallel engine: processes
    /// nodes exactly like [`Self::advanced_rec`], but instead of recursing
    /// past `depth` levels it records the decision path as a subtask
    /// prefix. Leaves, terminations, and prunes above the split depth are
    /// handled (and emitted into this driver's sink) right here, so
    /// `frontier ∪ shallow leaves` covers the whole tree exactly once.
    pub(crate) fn collect_frontier(&mut self, depth: usize) -> Vec<Vec<Decision>> {
        let mut out = Vec::new();
        let mut st = SearchState::new(self.comp);
        if !st.prune_root() {
            return out;
        }
        let mut path = Vec::new();
        self.frontier_rec(&mut st, depth, &mut path, &mut out);
        out
    }

    fn frontier_rec(
        &mut self,
        st: &mut SearchState<'a>,
        depth_left: usize,
        path: &mut Vec<Decision>,
        out: &mut Vec<Vec<Decision>>,
    ) {
        if depth_left == 0 {
            out.push(path.clone());
            return;
        }
        self.stats.nodes += 1;
        if self.budget_exceeded() {
            return;
        }
        if self.cfg.retain_candidates {
            promote_free_candidates(st);
        }
        if self.cfg.early_termination && can_terminate(st) {
            self.stats.early_terminations += 1;
            return;
        }
        let leaf = if self.cfg.retain_candidates {
            st.all_candidates_similarity_free()
        } else {
            st.sizes().1 == 0
        };
        if leaf {
            self.stats.leaves += 1;
            self.emit_leaf(st);
            return;
        }
        let include_sf = !self.cfg.retain_candidates;
        let Some((u, _)) = self.chooser.choose(st, include_sf) else {
            return;
        };
        let m = st.mark();
        if st.expand(u) {
            path.push((u, true));
            self.frontier_rec(st, depth_left - 1, path, out);
            path.pop();
        }
        st.rollback(m);
        if st.shrink(u) {
            path.push((u, false));
            self.frontier_rec(st, depth_left - 1, path, out);
            path.pop();
        }
        st.rollback(m);
    }

    /// Replays a frontier prefix on a fresh state and runs the full
    /// search below it. Replay applies the same node-entry promotions the
    /// frontier generator applied, so the reconstructed state is
    /// bit-identical to the generator's state at that node.
    pub(crate) fn run_prefix(&mut self, prefix: &[Decision]) {
        let mut st = SearchState::new(self.comp);
        if !st.prune_root() {
            return;
        }
        for (i, &(u, expand)) in prefix.iter().enumerate() {
            if self.cfg.retain_candidates {
                promote_free_candidates(&mut st);
            }
            let ok = if expand { st.expand(u) } else { st.shrink(u) };
            if !ok {
                // Only the *final* decision of a donated prefix may fail:
                // it is the one branch the donor never attempted itself,
                // and an infeasible sibling is an empty subtree.
                debug_assert_eq!(i + 1, prefix.len(), "prefix replay failed early");
                return;
            }
        }
        self.path = prefix.to_vec();
        self.advanced_rec(&mut st);
        self.path.clear();
    }

    fn budget_exceeded(&mut self) -> bool {
        if let Some(limit) = self.cfg.node_limit {
            if self.stats.nodes >= limit {
                self.aborted = true;
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if std::time::Instant::now() >= deadline {
                self.aborted = true;
                return true;
            }
        }
        if let Some(cancel) = &self.cfg.cancel {
            if cancel.is_cancelled() {
                self.aborted = true;
                return true;
            }
        }
        false
    }

    /// Algorithm 2: exhaustive expand/shrink with whole-set validation.
    fn naive_rec(&mut self, st: &mut SearchState<'a>) {
        self.stats.nodes += 1;
        if self.budget_exceeded() {
            return;
        }
        let (_, n_c, _) = st.sizes();
        if n_c == 0 {
            self.stats.leaves += 1;
            self.emit_naive(st);
            return;
        }
        // Any candidate works for the naive tree; take the lowest id.
        let u = (0..self.comp.len() as VertexId)
            .find(|&v| st.status(v) == Status::Cand)
            .expect("candidate exists");
        let m = st.mark();
        st.expand_naive(u);
        self.naive_rec(st);
        st.rollback(m);
        st.shrink_naive(u);
        self.naive_rec(st);
        st.rollback(m);
    }

    /// Algorithm 2 line 1: accept M only when the *whole* chosen set
    /// satisfies both constraints, then split into connected pieces.
    fn emit_naive(&mut self, st: &SearchState<'a>) {
        let m_members = st.members(Status::Chosen);
        if m_members.is_empty() {
            return;
        }
        let in_m: Vec<bool> = {
            let mut v = vec![false; self.comp.len()];
            for &u in &m_members {
                v[u as usize] = true;
            }
            v
        };
        // degmin(M) >= k.
        for &u in &m_members {
            let d = self
                .comp
                .neighbors(u)
                .iter()
                .filter(|&&w| in_m[w as usize])
                .count() as u32;
            if d < self.comp.k {
                return;
            }
        }
        // DP(M) = 0.
        for &u in &m_members {
            if self.comp.any_dissimilar_where(u, |w| in_m[w as usize]) {
                return;
            }
        }
        for piece in components_of(self.comp, &m_members) {
            self.push_core(KrCore::new(self.comp.globalize(&piece)));
        }
    }

    /// Algorithm 3 (AdvEnum) and its ablations.
    fn advanced_rec(&mut self, st: &mut SearchState<'a>) {
        self.stats.nodes += 1;
        if self.budget_exceeded() {
            return;
        }
        crate::parallel::maybe_donate(self.host, &self.path, &mut self.slots, 0, &mut self.stats);
        if self.cfg.retain_candidates {
            promote_free_candidates(st);
        }
        if self.cfg.early_termination && can_terminate(st) {
            self.stats.early_terminations += 1;
            return;
        }
        let leaf = if self.cfg.retain_candidates {
            st.all_candidates_similarity_free()
        } else {
            st.sizes().1 == 0
        };
        if leaf {
            self.stats.leaves += 1;
            self.emit_leaf(st);
            return;
        }
        let include_sf = !self.cfg.retain_candidates;
        let Some((u, _)) = self.chooser.choose(st, include_sf) else {
            return;
        };
        // Task drivers track the DFS path and the pending second branch
        // of every ancestor — the frontier `maybe_donate` splits from. A
        // donated sibling is skipped inline on unwind; sequential runs
        // (no host) skip the bookkeeping entirely.
        let track = self.host.is_some();
        let m = st.mark();
        let mut donated = None;
        if st.expand(u) {
            if track {
                self.slots.push(crate::parallel::DonationSlot {
                    depth: self.path.len(),
                    sibling: (u, false),
                    donated: None,
                });
                self.path.push((u, true));
            }
            self.advanced_rec(st);
            if track {
                self.path.pop();
                donated = self.slots.pop().expect("slot pushed above").donated;
            }
        }
        st.rollback(m);
        if donated.is_none() {
            if st.shrink(u) {
                if track {
                    self.path.push((u, false));
                }
                self.advanced_rec(st);
                if track {
                    self.path.pop();
                }
            }
            st.rollback(m);
        }
    }

    /// Emits the connected pieces of the leaf `M ∪ C` (Theorem 4 leaves are
    /// fully similarity-free, so every piece is a (k,r)-core).
    fn emit_leaf(&mut self, st: &SearchState<'a>) {
        let pieces = st.mc_components();
        let (n_m, _, _) = st.sizes();
        for piece in &pieces {
            if piece.len() <= self.comp.k as usize {
                continue; // cannot satisfy deg >= k (defensive; invariant implies it)
            }
            let m_inside = piece
                .iter()
                .filter(|&&v| st.status(v) == Status::Chosen)
                .count() as u32;
            let contains_all_m = m_inside == n_m;
            if self.cfg.maximal_check {
                // Sound only for pieces containing all of M (see module
                // docs); other pieces are found on their own branches.
                if !contains_all_m {
                    continue;
                }
                if self.checked.contains(piece) {
                    continue; // verdict already known from an earlier leaf
                }
                self.checked.insert(piece.clone());
                let mut candidates = st.members(Status::Excluded);
                // Co-leaf vertices outside this piece can also extend it.
                for other in &pieces {
                    if other.as_slice() != piece.as_slice() {
                        candidates.extend_from_slice(other);
                    }
                }
                self.stats.maximal_checks += 1;
                if check_maximal_with_order(
                    self.comp,
                    self.comp.k,
                    piece,
                    &candidates,
                    self.cfg.check_order,
                    self.cfg.lambda,
                ) {
                    self.push_core(KrCore::new(self.comp.globalize(piece)));
                }
            } else {
                self.push_core(KrCore::new(self.comp.globalize(piece)));
            }
        }
    }
}

/// Remark 1 of the paper: a similarity-free candidate already adjacent to
/// `k` chosen vertices can be moved straight into `M` — every maximal
/// (k,r)-core below this node must contain it (it extends any core that
/// omits it). The move evicts `E` members dissimilar to the promoted
/// vertex and cannot fail structurally (no `M ∪ C` vertex is removed).
pub(crate) fn promote_free_candidates(st: &mut SearchState<'_>) {
    loop {
        let u = (0..st.comp.len() as VertexId)
            .find(|&v| st.status(v) == Status::Cand && st.dp_c(v) == 0 && st.deg_m(v) >= st.k);
        match u {
            Some(u) => {
                let ok = st.expand(u);
                debug_assert!(ok, "promotion cannot fail");
            }
            None => break,
        }
    }
}

/// Connected pieces of a vertex subset (local ids).
fn components_of(comp: &LocalComponent, subset: &[VertexId]) -> Vec<Vec<VertexId>> {
    let mut in_set = vec![false; comp.len()];
    for &v in subset {
        in_set[v as usize] = true;
    }
    let mut seen = vec![false; comp.len()];
    let mut out = Vec::new();
    for &s in subset {
        if seen[s as usize] {
            continue;
        }
        let mut piece = Vec::new();
        let mut stack = vec![s];
        seen[s as usize] = true;
        while let Some(v) = stack.pop() {
            piece.push(v);
            for &w in comp.neighbors(v) {
                if in_set[w as usize] && !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        piece.sort_unstable();
        out.push(piece);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kr_graph::Graph;
    use kr_similarity::{AttributeTable, Metric, Threshold};

    /// The motivating shape: two 4-cliques sharing vertex 3, left clique
    /// near the origin, right clique far away, vertex 3 in the middle but
    /// within range of both.
    fn bridged_cliques(r: f64) -> ProblemInstance {
        let mut edges = vec![];
        for group in [[0u32, 1, 2, 3], [3u32, 4, 5, 6]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((group[i], group[j]));
                }
            }
        }
        let g = Graph::from_edges(7, &edges);
        let pts = vec![
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (5.0, 0.0), // shared vertex, close enough to both sides
            (10.0, 0.0),
            (11.0, 0.0),
            (10.0, 1.0),
        ];
        ProblemInstance::new(
            g,
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(r),
            2,
        )
    }

    fn all_configs() -> Vec<(&'static str, AlgoConfig)> {
        vec![
            ("naive", AlgoConfig::naive_enum()),
            ("basic", AlgoConfig::basic_enum()),
            ("be_cr", AlgoConfig::be_cr()),
            ("be_cr_et", AlgoConfig::be_cr_et()),
            ("adv", AlgoConfig::adv_enum()),
        ]
    }

    #[test]
    fn two_overlapping_cores_found_by_all_configs() {
        // r = 7: each clique is internally similar (left diameter ~1.4 plus
        // vertex 3 at distance ~5; right likewise), but cross-side pairs
        // (distance ~10) are dissimilar.
        let p = bridged_cliques(7.0);
        for (name, cfg) in all_configs() {
            let res = enumerate_maximal(&p, &cfg);
            assert!(res.completed);
            assert_eq!(res.cores.len(), 2, "{name}: {:?}", res.cores);
            assert!(res.cores.contains(&KrCore::new(vec![0, 1, 2, 3])), "{name}");
            assert!(res.cores.contains(&KrCore::new(vec![3, 4, 5, 6])), "{name}");
        }
    }

    #[test]
    fn single_core_when_r_large() {
        let p = bridged_cliques(100.0);
        for (name, cfg) in all_configs() {
            let res = enumerate_maximal(&p, &cfg);
            assert_eq!(res.cores.len(), 1, "{name}");
            assert_eq!(res.cores[0].len(), 7, "{name}");
        }
    }

    #[test]
    fn nothing_when_r_tiny() {
        let p = bridged_cliques(0.5);
        for (name, cfg) in all_configs() {
            let res = enumerate_maximal(&p, &cfg);
            // Every 4-clique loses its bridge vertex... with r=0.5 even the
            // near triangle (distances 1, 1, ~1.4) is dissimilar: no cores.
            assert!(res.cores.is_empty(), "{name}: {:?}", res.cores);
        }
    }

    #[test]
    fn verified_against_definitions() {
        let p = bridged_cliques(7.0);
        let res = enumerate_maximal(&p, &AlgoConfig::adv_enum());
        crate::verify::verify_maximal_family(&p, &res.cores).unwrap();
        for c in &res.cores {
            assert!(crate::verify::is_maximal_kr_core(&p, c));
        }
    }

    #[test]
    fn node_limit_aborts() {
        let p = bridged_cliques(7.0);
        let cfg = AlgoConfig::naive_enum().with_node_limit(3);
        let res = enumerate_maximal(&p, &cfg);
        assert!(!res.completed);
    }

    #[test]
    fn pre_cancelled_flag_aborts_immediately() {
        let p = bridged_cliques(7.0);
        for (name, cfg) in all_configs() {
            let flag = crate::config::CancelFlag::new();
            flag.cancel();
            let res = enumerate_maximal(&p, &cfg.with_cancel(flag));
            assert!(!res.completed, "{name}");
        }
    }

    #[test]
    fn cancel_from_streaming_hook_stops_the_sweep() {
        // The serving layer's abort path in miniature: the hook observes
        // the first streamed core and cancels; the run must end incomplete
        // without streaming the second core.
        let p = bridged_cliques(7.0);
        let flag = crate::config::CancelFlag::new();
        let streamed = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let (f, tap) = (flag.clone(), streamed.clone());
        let cfg =
            AlgoConfig::adv_enum()
                .with_cancel(flag)
                .with_on_core(crate::config::CoreHook::new(move |_: &KrCore| {
                    tap.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    f.cancel();
                }));
        let res = enumerate_maximal(&p, &cfg);
        assert!(!res.completed);
        assert_eq!(streamed.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = bridged_cliques(7.0);
        let seq = enumerate_maximal(&p, &AlgoConfig::adv_enum());
        let mut cfg = AlgoConfig::adv_enum();
        cfg.parallel_components = true;
        let par = enumerate_maximal(&p, &cfg);
        assert_eq!(seq.cores, par.cores);
    }

    #[test]
    fn prepared_matches_and_streams_each_core_once() {
        let p = bridged_cliques(7.0);
        let comps = p.preprocess();
        let streamed = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let tap = streamed.clone();
        let cfg =
            AlgoConfig::adv_enum().with_on_core(crate::config::CoreHook::new(move |c: &KrCore| {
                tap.lock().unwrap().push(c.clone())
            }));
        let res = enumerate_maximal_prepared(&comps, &cfg);
        assert_eq!(
            res.cores,
            enumerate_maximal(&p, &AlgoConfig::adv_enum()).cores
        );
        let mut streamed = streamed.lock().unwrap().clone();
        streamed.sort_by(|a, b| a.vertices.cmp(&b.vertices));
        assert_eq!(streamed, res.cores, "hook must fire once per core");
    }

    #[test]
    fn hook_ignored_without_maximal_check() {
        // BasicEnum's cores are only known maximal after the subset
        // post-filter, so the hook must stay silent.
        let p = bridged_cliques(7.0);
        let count = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let tap = count.clone();
        let cfg = AlgoConfig::basic_enum().with_on_core(crate::config::CoreHook::new(
            move |_: &KrCore| {
                tap.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            },
        ));
        let res = enumerate_maximal(&p, &cfg);
        assert_eq!(res.cores.len(), 2);
        assert_eq!(count.load(std::sync::atomic::Ordering::Relaxed), 0);
    }

    #[test]
    fn size_summary() {
        let p = bridged_cliques(7.0);
        let res = enumerate_maximal(&p, &AlgoConfig::adv_enum());
        let (count, max, avg) = res.size_summary();
        assert_eq!(count, 2);
        assert_eq!(max, 4);
        assert!((avg - 4.0).abs() < 1e-9);
    }
}
