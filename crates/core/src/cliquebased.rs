//! The clique-based baseline (Clique+, Section 3).
//!
//! A (k,r)-core's vertex set is a clique of the similarity graph, so the
//! baseline: (1) removes dissimilar edges and peels to the k-core, (2)
//! *materializes* the similarity graph of each connected component — the
//! expensive step the paper's algorithms avoid — (3) enumerates its maximal
//! cliques with Bron–Kerbosch, (4) computes the k-core of the subgraph
//! induced by each maximal clique and keeps its connected pieces, and (5)
//! filters non-maximal results.

use crate::component::LocalComponent;
use crate::problem::ProblemInstance;
use crate::result::{filter_maximal, CoreSink, KrCore};
use kr_clique::try_maximal_cliques_visit;
use kr_graph::VertexId;
use kr_similarity::build_similarity_graph;

/// Enumerates all maximal (k,r)-cores with the Clique+ baseline.
pub fn clique_based_maximal(problem: &ProblemInstance) -> Vec<KrCore> {
    clique_based_maximal_budgeted(problem, None).0
}

/// Budgeted Clique+: aborts once `time_limit_ms` elapses (maximal-clique
/// counts are exponential in the worst case — this is the paper's Figure 8
/// INF case). Returns the cores found so far and whether the run finished.
pub fn clique_based_maximal_budgeted(
    problem: &ProblemInstance,
    time_limit_ms: Option<u64>,
) -> (Vec<KrCore>, bool) {
    let deadline =
        time_limit_ms.map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
    let comps = problem.preprocess();
    let mut sink = CoreSink::new();
    let mut completed = true;
    for comp in &comps {
        if !clique_based_component(problem, comp, &mut sink, deadline) {
            completed = false;
            break;
        }
    }
    let mut cores = filter_maximal(sink.into_cores());
    cores.sort_by(|a, b| a.vertices.cmp(&b.vertices));
    (cores, completed)
}

/// The maximum (k,r)-core via the baseline (largest maximal core).
pub fn clique_based_maximum(problem: &ProblemInstance) -> Option<KrCore> {
    clique_based_maximal(problem)
        .into_iter()
        .max_by_key(|c| c.len())
}

/// Returns false when the deadline fired mid-enumeration.
fn clique_based_component(
    problem: &ProblemInstance,
    comp: &LocalComponent,
    sink: &mut CoreSink,
    deadline: Option<std::time::Instant>,
) -> bool {
    // Materialize the similarity graph over the component members
    // (renumbered 0..n in `local_to_global` order, which matches the
    // component's own local ids). Since PR 4 this rides the oracle's
    // candidate index, so only possibly-similar pairs pay a metric
    // evaluation — but the materialized graph itself is still the
    // baseline's scaling handicap versus the advanced search.
    let simgraph = build_similarity_graph(problem.oracle(), &comp.local_to_global);
    let k = comp.k;
    try_maximal_cliques_visit(&simgraph, |clique| {
        if let Some(d) = deadline {
            if std::time::Instant::now() >= d {
                return false;
            }
        }
        if clique.len() > k as usize {
            // k-core of the structure subgraph induced by the clique.
            let core = local_k_core(comp, clique, k);
            for piece in local_components(comp, &core) {
                if piece.len() > k as usize {
                    sink.push(KrCore::new(comp.globalize(&piece)));
                }
            }
        }
        true
    })
}

/// k-core peeling of the subgraph of `comp` induced by `subset`.
fn local_k_core(comp: &LocalComponent, subset: &[VertexId], k: u32) -> Vec<VertexId> {
    let n = comp.len();
    let mut alive = vec![false; n];
    for &v in subset {
        alive[v as usize] = true;
    }
    let mut deg = vec![0u32; n];
    for &v in subset {
        deg[v as usize] = comp
            .neighbors(v)
            .iter()
            .filter(|&&w| alive[w as usize])
            .count() as u32;
    }
    let mut queue: Vec<VertexId> = subset
        .iter()
        .copied()
        .filter(|&v| deg[v as usize] < k)
        .collect();
    for &v in &queue {
        alive[v as usize] = false;
    }
    while let Some(v) = queue.pop() {
        for &w in comp.neighbors(v) {
            if alive[w as usize] {
                deg[w as usize] -= 1;
                if deg[w as usize] < k {
                    alive[w as usize] = false;
                    queue.push(w);
                }
            }
        }
    }
    subset
        .iter()
        .copied()
        .filter(|&v| alive[v as usize])
        .collect()
}

/// Connected pieces of a local vertex subset.
fn local_components(comp: &LocalComponent, subset: &[VertexId]) -> Vec<Vec<VertexId>> {
    let mut in_set = vec![false; comp.len()];
    for &v in subset {
        in_set[v as usize] = true;
    }
    let mut seen = vec![false; comp.len()];
    let mut out = Vec::new();
    for &s in subset {
        if seen[s as usize] {
            continue;
        }
        let mut piece = vec![];
        let mut stack = vec![s];
        seen[s as usize] = true;
        while let Some(v) = stack.pop() {
            piece.push(v);
            for &w in comp.neighbors(v) {
                if in_set[w as usize] && !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        piece.sort_unstable();
        out.push(piece);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgoConfig;
    use crate::enumerate::enumerate_maximal;
    use kr_graph::Graph;
    use kr_similarity::{AttributeTable, Metric, Threshold};

    fn instance(r: f64) -> ProblemInstance {
        let mut edges = vec![];
        for group in [[0u32, 1, 2, 3], [3u32, 4, 5, 6]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((group[i], group[j]));
                }
            }
        }
        let g = Graph::from_edges(7, &edges);
        let pts = vec![
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (5.0, 0.0),
            (10.0, 0.0),
            (11.0, 0.0),
            (10.0, 1.0),
        ];
        ProblemInstance::new(
            g,
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(r),
            2,
        )
    }

    #[test]
    fn matches_advanced_enumeration() {
        for r in [0.5, 7.0, 100.0] {
            let p = instance(r);
            let fast = enumerate_maximal(&p, &AlgoConfig::adv_enum()).cores;
            let baseline = clique_based_maximal(&p);
            assert_eq!(fast, baseline, "r = {r}");
        }
    }

    #[test]
    fn maximum_agrees() {
        let p = instance(7.0);
        let m = clique_based_maximum(&p).unwrap();
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn empty_when_no_core() {
        let p = instance(0.1);
        assert!(clique_based_maximal(&p).is_empty());
        assert!(clique_based_maximum(&p).is_none());
    }
}
