//! Work-stealing parallel engine for the (k,r)-core searches.
//!
//! Both searches walk a binary expand/shrink tree per
//! [`crate::component::LocalComponent`]. This module splits the **top
//! `d` levels** of every
//! component's tree into independent subtasks and schedules them on a
//! rayon work-stealing pool:
//!
//! 1. **Frontier generation** (sequential, cheap — at most `2^d` shallow
//!    nodes per component): a depth-limited run of the normal driver.
//!    Nodes that close above the split depth (leaves, early terminations,
//!    bound prunes) are handled right there; every surviving depth-`d`
//!    node becomes a subtask identified by its decision prefix.
//! 2. **Subtask execution**: workers replay a subtask's prefix on a fresh
//!    [`crate::search::SearchState`] (replay is linear in the prefix
//!    length since every expand/shrink is trail-logged) and run the
//!    ordinary recursive search below it. Rayon's work stealing load-
//!    balances the wildly uneven subtree sizes.
//! 3. **Merge**: subtask results are combined in deterministic DFS order.
//!
//! ### Result equivalence with the sequential engine
//!
//! *Enumeration* emits a set of cores that is a function of the problem
//! alone (every maximal core is found on every traversal order), so
//! concatenating subtask sinks, deduplicating, and sorting reproduces the
//! sequential output exactly.
//!
//! *Maximum search* prunes with an incumbent, so naive sharing would
//! change which of several equally-sized maximum cores survives. Two rules
//! keep the returned core identical to the sequential run's:
//!
//! * a subtask starts its local incumbent at the generator's best size
//!   **at task creation** (exactly the DFS-prefix knowledge the
//!   sequential run would have had there) and prunes against it with
//!   `ub <= incumbent`, mirroring sequential semantics;
//! * the cross-worker [`AtomicUsize`] incumbent — the engine's speed
//!   lever — is only consulted **strictly** (`ub < global`). A strict cut
//!   can never prune the subtree holding the DFS-first core of the final
//!   maximum size `S`: that subtree's bound is at least `S`, and the
//!   global incumbent never exceeds `S`.
//!
//! The merge then scans events (shallow finds and subtasks) in DFS order
//! carrying the incumbent forward, which selects precisely the core the
//! sequential run returns. (With [`SearchOrder::Random`] the chooser RNG
//! stream differs between the two engines, so tie-breaking — and only
//! tie-breaking — may differ; all shipped parallel presets use
//! deterministic orders.)
//!
//! [`SearchOrder::Random`]: crate::config::SearchOrder::Random

use crate::component::LocalComponent;
use crate::config::AlgoConfig;
use crate::enumerate::{merge_stats, Driver, EnumResult};
use crate::maximum::{MaxDriver, MaxEvent, MaxResult};
use crate::problem::ProblemInstance;
use crate::result::{CoreSink, KrCore};
use crate::search::{Decision, SearchStats};
use std::sync::atomic::AtomicUsize;
use std::sync::Mutex;

/// Resolves the config knob: `0` = all available cores.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    }
}

/// Split depth: deep enough that the frontier (≤ `2^d` subtasks per
/// component) keeps every worker busy despite uneven subtree sizes.
fn split_depth(threads: usize) -> usize {
    let target = (threads * 8).max(2) - 1;
    (usize::BITS - target.leading_zeros()) as usize
}

fn make_pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool")
}

/// Runs `f` over `items` on `pool`'s workers, returning the outputs in
/// item order. The association between an item and its output is by
/// index, so callers never correlate results positionally themselves.
pub(crate) fn ordered_pool_map<'env, T, U, F>(
    pool: &rayon::ThreadPool,
    items: &'env [T],
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'env T) -> U + Sync,
{
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let obs = crate::obs::engine_obs();
    obs.pool_tasks.add(items.len() as u64);
    // The spawning thread runs `pool.scope`'s body itself; a task that
    // executes on any other thread crossed the pool's stealing deques.
    let spawner = std::thread::current().id();
    pool.scope(|s| {
        for (item, slot) in items.iter().zip(&slots) {
            let f = &f;
            s.spawn(move |_| {
                if std::thread::current().id() != spawner {
                    crate::obs::engine_obs().pool_tasks_stolen.inc();
                }
                *slot.lock().expect("slot lock") = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("worker completed")
        })
        .collect()
}

fn deadline_of(cfg: &AlgoConfig) -> Option<std::time::Instant> {
    cfg.time_limit_ms
        .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms))
}

/// Parallel [`crate::enumerate_maximal`]. Requires `cfg.prune_candidates`
/// (callers dispatch NaiveEnum to the sequential engine). One pool serves
/// the whole query: the preprocessing phases and the subtask phase.
pub(crate) fn enumerate_parallel(problem: &ProblemInstance, cfg: &AlgoConfig) -> EnumResult {
    let threads = resolve_threads(cfg.threads);
    let pool = make_pool(threads);
    let comps = problem.preprocess_on(&pool);
    enumerate_on(&comps, cfg, &pool)
}

/// [`enumerate_parallel`] over already-preprocessed components (the
/// serving layer's cache-hit path); builds the query's pool itself.
pub(crate) fn enumerate_parallel_prepared(
    comps: &[LocalComponent],
    cfg: &AlgoConfig,
) -> EnumResult {
    let pool = make_pool(resolve_threads(cfg.threads));
    enumerate_on(comps, cfg, &pool)
}

pub(crate) fn enumerate_on(
    comps: &[LocalComponent],
    cfg: &AlgoConfig,
    pool: &rayon::ThreadPool,
) -> EnumResult {
    let threads = pool.current_num_threads();
    let deadline = deadline_of(cfg);
    let depth = split_depth(threads);

    // Phase 1: frontier generation, one generator driver per component.
    let mut stats = SearchStats::default();
    let mut completed = true;
    let mut sink = CoreSink::new();
    let mut tasks: Vec<(usize, Vec<Decision>)> = Vec::new();
    let mut generators: Vec<Driver<'_>> = Vec::new();
    for (ci, comp) in comps.iter().enumerate() {
        let mut driver = Driver::new(comp, cfg, deadline);
        for prefix in driver.collect_frontier(depth) {
            tasks.push((ci, prefix));
        }
        generators.push(driver);
    }

    // Phase 2: run subtasks on the query's pool.
    crate::obs::engine_obs()
        .subtasks_split
        .add(tasks.len() as u64);
    let task_results = ordered_pool_map(pool, &tasks, |(ci, prefix)| {
        let mut driver = Driver::new(&comps[*ci], cfg, deadline);
        driver.run_prefix(prefix);
        (driver.sink, driver.stats, driver.aborted)
    });

    // Phase 3: merge. Cross-task duplicates are possible (the same leaf
    // piece is reachable in several subtrees); the sink dedups them. With
    // the maximal check on, every deduplicated core is final, so this is
    // also where a streaming hook fires — exactly once per core.
    let stream = if cfg.maximal_check {
        cfg.on_core.clone()
    } else {
        None
    };
    let push = |sink: &mut CoreSink, core: KrCore| match &stream {
        Some(hook) => {
            if sink.push(core.clone()) {
                hook.emit(&core);
            }
        }
        None => {
            sink.push(core);
        }
    };
    for driver in generators {
        for core in driver.sink.into_cores() {
            push(&mut sink, core);
        }
        merge_stats(&mut stats, driver.stats);
        completed &= !driver.aborted;
    }
    for (task_sink, task_stats, aborted) in task_results {
        for core in task_sink.into_cores() {
            push(&mut sink, core);
        }
        merge_stats(&mut stats, task_stats);
        completed &= !aborted;
    }
    let mut cores = if cfg.maximal_check {
        sink.into_cores()
    } else {
        sink.into_maximal()
    };
    cores.sort_by(|a, b| a.vertices.cmp(&b.vertices));
    EnumResult {
        cores,
        stats,
        completed,
    }
}

/// Parallel [`crate::find_maximum`] (see the module docs for the
/// equivalence argument). One pool serves the whole query.
pub(crate) fn find_maximum_parallel(problem: &ProblemInstance, cfg: &AlgoConfig) -> MaxResult {
    let threads = resolve_threads(cfg.threads);
    let pool = make_pool(threads);
    let comps = problem.preprocess_on(&pool);
    find_maximum_on(&comps, cfg, &pool)
}

/// [`find_maximum_parallel`] over already-preprocessed components (the
/// serving layer's cache-hit path); builds the query's pool itself.
pub(crate) fn find_maximum_parallel_prepared(
    comps: &[LocalComponent],
    cfg: &AlgoConfig,
) -> MaxResult {
    let pool = make_pool(resolve_threads(cfg.threads));
    find_maximum_on(comps, cfg, &pool)
}

pub(crate) fn find_maximum_on(
    comps: &[LocalComponent],
    cfg: &AlgoConfig,
    pool: &rayon::ThreadPool,
) -> MaxResult {
    let threads = pool.current_num_threads();
    let deadline = deadline_of(cfg);
    let depth = split_depth(threads);

    // Phase 1: frontier generation in component order, carrying the
    // generator incumbent across components (sequential-prefix knowledge
    // only, so components skipped here would be skipped sequentially too).
    // The DFS-ordered merge plan: shallow finds inline, subtasks by index
    // into `tasks`/`task_slots` (structural association — both phases
    // address a task by the same index).
    enum Step {
        Found {
            ci: usize,
            size: usize,
            piece: Vec<kr_graph::VertexId>,
        },
        Task(usize),
    }
    struct Task {
        ci: usize,
        prefix: Vec<crate::search::Decision>,
        start_incumbent: usize,
    }
    let mut stats = SearchStats::default();
    let mut completed = true;
    let mut steps: Vec<Step> = Vec::new();
    let mut tasks: Vec<Task> = Vec::new();
    let mut gen_incumbent = 0usize;
    for (ci, comp) in comps.iter().enumerate() {
        if comp.len() <= gen_incumbent {
            stats.bound_prunes += 1;
            continue;
        }
        let mut driver = MaxDriver::new(comp, cfg, deadline, gen_incumbent, None);
        let evs = driver.collect_frontier(depth);
        gen_incumbent = gen_incumbent.max(driver.best_len);
        merge_stats(&mut stats, driver.stats);
        completed &= !driver.aborted;
        for event in evs {
            match event {
                MaxEvent::Found { size, piece } => steps.push(Step::Found { ci, size, piece }),
                MaxEvent::Task {
                    prefix,
                    start_incumbent,
                } => {
                    steps.push(Step::Task(tasks.len()));
                    tasks.push(Task {
                        ci,
                        prefix,
                        start_incumbent,
                    });
                }
            }
        }
    }

    // Phase 2: run subtasks, sharing the incumbent through an atomic.
    struct TaskResult {
        best_local: Vec<kr_graph::VertexId>,
        stats: SearchStats,
        aborted: bool,
    }
    crate::obs::engine_obs()
        .subtasks_split
        .add(tasks.len() as u64);
    let global = AtomicUsize::new(gen_incumbent);
    let task_results = ordered_pool_map(pool, &tasks, |task| {
        let mut driver = MaxDriver::new(
            &comps[task.ci],
            cfg,
            deadline,
            task.start_incumbent,
            Some(&global),
        );
        driver.run_prefix(&task.prefix);
        TaskResult {
            best_local: driver.best_local,
            stats: driver.stats,
            aborted: driver.aborted,
        }
    });

    // Phase 3: merge in DFS step order with a carried incumbent.
    let mut best: Option<KrCore> = None;
    let mut incumbent = 0usize;
    let mut task_results = task_results.into_iter().map(Some).collect::<Vec<_>>();
    for step in steps {
        let (ci, size, piece) = match step {
            Step::Found { ci, size, piece } => (ci, size, piece),
            Step::Task(i) => {
                let result = task_results[i].take().expect("each task merged once");
                merge_stats(&mut stats, result.stats);
                completed &= !result.aborted;
                (tasks[i].ci, result.best_local.len(), result.best_local)
            }
        };
        if size > incumbent && !piece.is_empty() {
            incumbent = size;
            best = Some(KrCore::new(comps[ci].globalize(&piece)));
        }
    }
    MaxResult {
        core: best,
        stats,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_maximal;
    use crate::maximum::find_maximum;
    use kr_graph::Graph;
    use kr_similarity::{AttributeTable, Metric, Threshold};

    /// Three bridged cliques, mixed similarity (same shape the sequential
    /// engines are tested on).
    fn instance(r: f64) -> ProblemInstance {
        let mut edges = vec![];
        for group in [[0u32, 1, 2, 3], [3u32, 4, 5, 6], [3u32, 7, 8, 9]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((group[i], group[j]));
                }
            }
        }
        for v in [3u32, 7, 8, 9] {
            edges.push((v, 10));
        }
        let g = Graph::from_edges(11, &edges);
        let pts = vec![
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (5.0, 0.0),
            (10.0, 0.0),
            (11.0, 0.0),
            (10.0, 1.0),
            (5.0, 4.0),
            (6.0, 4.0),
            (5.0, 5.0),
            (6.0, 5.0),
        ];
        ProblemInstance::new(
            g,
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(r),
            2,
        )
    }

    #[test]
    fn parallel_enum_identical_to_sequential() {
        for r in [0.5, 7.0, 9.0, 100.0] {
            let p = instance(r);
            let seq = enumerate_maximal(&p, &AlgoConfig::adv_enum());
            for threads in [2, 4, 8] {
                let par =
                    enumerate_maximal(&p, &AlgoConfig::adv_enum_parallel().with_threads(threads));
                assert!(par.completed);
                assert_eq!(par.cores, seq.cores, "r={r} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_max_identical_to_sequential() {
        for r in [0.5, 7.0, 9.0, 100.0] {
            let p = instance(r);
            let seq = find_maximum(&p, &AlgoConfig::adv_max());
            for threads in [2, 4, 8] {
                let par = find_maximum(&p, &AlgoConfig::adv_max_parallel().with_threads(threads));
                assert!(par.completed);
                assert_eq!(
                    par.core.as_ref().map(|c| &c.vertices),
                    seq.core.as_ref().map(|c| &c.vertices),
                    "r={r} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn thread_knob_one_uses_sequential_engine() {
        let p = instance(7.0);
        let cfg = AlgoConfig::adv_enum_parallel().with_threads(1);
        // threads == 1 must route to the sequential engine and still agree.
        let a = enumerate_maximal(&p, &cfg);
        let b = enumerate_maximal(&p, &AlgoConfig::adv_enum());
        assert_eq!(a.cores, b.cores);
    }

    #[test]
    fn split_depth_scales() {
        assert_eq!(split_depth(1), 3); // 8 tasks
        assert_eq!(split_depth(4), 5); // 32 tasks
        assert!(split_depth(64) <= 10);
    }

    #[test]
    fn parallel_prepared_matches_and_streams() {
        let p = instance(7.0);
        let comps = p.preprocess();
        let seq = enumerate_maximal(&p, &AlgoConfig::adv_enum());
        let streamed = std::sync::Arc::new(Mutex::new(Vec::new()));
        let tap = streamed.clone();
        let cfg = AlgoConfig::adv_enum_parallel()
            .with_threads(4)
            .with_on_core(crate::config::CoreHook::new(
                move |c: &crate::result::KrCore| tap.lock().unwrap().push(c.clone()),
            ));
        let par = crate::enumerate_maximal_prepared(&comps, &cfg);
        assert_eq!(par.cores, seq.cores);
        let mut streamed = streamed.lock().unwrap().clone();
        streamed.sort_by(|a, b| a.vertices.cmp(&b.vertices));
        assert_eq!(streamed, seq.cores, "merge phase streams each core once");

        let max_seq = find_maximum(&p, &AlgoConfig::adv_max());
        let max_par =
            crate::find_maximum_prepared(&comps, &AlgoConfig::adv_max_parallel().with_threads(4));
        assert_eq!(
            max_par.core.as_ref().map(|c| &c.vertices),
            max_seq.core.as_ref().map(|c| &c.vertices),
        );
    }

    #[test]
    fn basic_enum_parallel_matches_without_maximal_check() {
        // No Theorem 6 check: the parallel merge must fall back to the
        // global subset post-filter and still agree with sequential.
        let p = instance(7.0);
        let seq = enumerate_maximal(&p, &AlgoConfig::basic_enum());
        let par = enumerate_maximal(&p, &AlgoConfig::basic_enum().with_threads(4));
        assert_eq!(par.cores, seq.cores);
    }
}
