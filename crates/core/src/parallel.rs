//! Work-stealing parallel engine for the (k,r)-core searches.
//!
//! Both searches walk a binary expand/shrink tree per
//! [`crate::component::LocalComponent`]. This module splits the **top
//! `d` levels** of every
//! component's tree into independent subtasks and schedules them on a
//! rayon work-stealing pool:
//!
//! 1. **Frontier generation** (sequential, cheap — at most `2^d` shallow
//!    nodes per component): a depth-limited run of the normal driver.
//!    Nodes that close above the split depth (leaves, early terminations,
//!    bound prunes) are handled right there; every surviving depth-`d`
//!    node becomes a subtask identified by its decision prefix.
//! 2. **Subtask execution**: workers replay a subtask's prefix on a fresh
//!    [`crate::search::SearchState`] (replay is linear in the prefix
//!    length since every expand/shrink is trail-logged) and run the
//!    ordinary recursive search below it. Rayon's work stealing load-
//!    balances the wildly uneven subtree sizes.
//! 3. **Merge**: subtask results are combined in deterministic DFS order.
//!
//! ### Adaptive re-splitting
//!
//! A static top-`d` split can strand the pool: one subtask may own almost
//! the whole tree (skewed instances), leaving every other worker idle
//! while it grinds alone. Under [`Resplit::Adaptive`] (the default) a
//! running task driver polls a `DonationHost` at node entry; when the
//! pool reports starvation (live tasks < workers) the driver *donates*
//! the shallowest not-yet-taken sibling branches of its current DFS path
//! as fresh subtasks — shallowest first, since those subtrees are the
//! largest — and skips them inline on unwind. A donated prefix replays
//! exactly like an initial one (same node-entry promotions), except that
//! its **final** decision is allowed to fail structurally: it is the one
//! branch the donor never attempted itself, and an infeasible sibling is
//! simply an empty subtree.
//!
//! Re-splitting preserves the equivalence argument below. Enumeration
//! merges by sink union, which is traversal-independent. Maximum search
//! tasks record DFS-ordered `MergeEvent`s — improving finds plus a
//! `Child` marker where each sibling was donated — and the merge folds a
//! task's events recursively, splicing a donated child in at its marker:
//! the fold visits finds in exactly the sequential DFS order, so the
//! carried incumbent selects the identical winner. A donated task starts
//! from the donor's incumbent *at donation time* — a DFS-prefix subset of
//! what the sequential run would know there, so it can only under-prune
//! (never skip the true winner); the fold's carried incumbent discards
//! any extra sub-incumbent finds that weaker pruning lets through.
//!
//! ### Result equivalence with the sequential engine
//!
//! *Enumeration* emits a set of cores that is a function of the problem
//! alone (every maximal core is found on every traversal order), so
//! concatenating subtask sinks, deduplicating, and sorting reproduces the
//! sequential output exactly.
//!
//! *Maximum search* prunes with an incumbent, so naive sharing would
//! change which of several equally-sized maximum cores survives. Two rules
//! keep the returned core identical to the sequential run's:
//!
//! * a subtask starts its local incumbent at the generator's best size
//!   **at task creation** (exactly the DFS-prefix knowledge the
//!   sequential run would have had there) and prunes against it with
//!   `ub <= incumbent`, mirroring sequential semantics;
//! * the cross-worker [`AtomicUsize`] incumbent — the engine's speed
//!   lever — is only consulted **strictly** (`ub < global`). A strict cut
//!   can never prune the subtree holding the DFS-first core of the final
//!   maximum size `S`: that subtree's bound is at least `S`, and the
//!   global incumbent never exceeds `S`.
//!
//! The merge then scans events (shallow finds and subtasks) in DFS order
//! carrying the incumbent forward, which selects precisely the core the
//! sequential run returns. (With [`SearchOrder::Random`] the chooser RNG
//! stream differs between the two engines, so tie-breaking — and only
//! tie-breaking — may differ; all shipped parallel presets use
//! deterministic orders.)
//!
//! [`SearchOrder::Random`]: crate::config::SearchOrder::Random

use crate::component::LocalComponent;
use crate::config::{AlgoConfig, Resplit};
use crate::enumerate::{merge_stats, Driver, EnumResult};
use crate::maximum::{MaxDriver, MaxEvent, MaxResult};
use crate::problem::ProblemInstance;
use crate::result::{CoreSink, KrCore};
use crate::search::{Decision, SearchStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves the config knob: `0` = all available cores.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    }
}

/// Split depth: deep enough that the frontier (≤ `2^d` subtasks per
/// component) keeps every worker busy despite uneven subtree sizes.
fn split_depth(threads: usize) -> usize {
    let target = (threads * 8).max(2) - 1;
    (usize::BITS - target.leading_zeros()) as usize
}

fn make_pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool")
}

/// Runs `f` over `items` on `pool`'s workers, returning the outputs in
/// item order. The association between an item and its output is by
/// index, so callers never correlate results positionally themselves.
pub(crate) fn ordered_pool_map<'env, T, U, F>(
    pool: &rayon::ThreadPool,
    items: &'env [T],
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'env T) -> U + Sync,
{
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let obs = crate::obs::engine_obs();
    obs.pool_tasks.add(items.len() as u64);
    // The spawning thread runs `pool.scope`'s body itself; a task that
    // executes on any other thread crossed the pool's stealing deques.
    let spawner = std::thread::current().id();
    pool.scope(|s| {
        for (item, slot) in items.iter().zip(&slots) {
            let f = &f;
            s.spawn(move |_| {
                if std::thread::current().id() != spawner {
                    crate::obs::engine_obs().pool_tasks_stolen.inc();
                }
                *slot.lock().expect("slot lock") = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("worker completed")
        })
        .collect()
}

/// A pending second branch on a running task driver's DFS path: the
/// donation currency of re-splitting.
pub(crate) struct DonationSlot {
    /// Length of the driver's decision path at the branch node (the
    /// sibling's prefix is `path[..depth]` plus `sibling`).
    pub(crate) depth: usize,
    /// The branch the driver has not yet taken at that node.
    pub(crate) sibling: Decision,
    /// Task id the sibling was donated as, if any; the driver then skips
    /// the branch inline on unwind (maximum search records a
    /// [`MergeEvent::Child`] marker there instead).
    pub(crate) donated: Option<u64>,
}

/// Surface through which a running task driver re-splits (implemented per
/// engine so donated tasks can be spawned onto the live scope).
pub(crate) trait DonationHost {
    /// How many fresh subtasks the pool could absorb right now. Zero
    /// means the pool is busy and donation would only add replay
    /// overhead.
    fn wanted(&self) -> usize;
    /// Spawns `prefix` as a fresh subtask and returns its task id.
    /// `start_incumbent` is the donor's best size at donation time
    /// (ignored by enumeration).
    fn donate(&self, prefix: Vec<Decision>, start_incumbent: usize) -> u64;
}

/// Starvation signal and task-id allocator shared by every task of one
/// parallel query (initial and donated alike).
pub(crate) struct ResplitShared {
    /// Tasks spawned and not yet finished.
    live: AtomicUsize,
    workers: usize,
    /// Next task id; initial tasks own `0..initial`, donations allocate
    /// from `initial` upward.
    next_tid: AtomicUsize,
    mode: Resplit,
}

impl ResplitShared {
    fn new(initial_tasks: usize, workers: usize, mode: Resplit) -> Self {
        ResplitShared {
            live: AtomicUsize::new(0),
            workers,
            next_tid: AtomicUsize::new(initial_tasks),
            mode,
        }
    }

    fn task_spawned(&self) {
        self.live.fetch_add(1, Ordering::SeqCst);
    }

    fn task_finished(&self) {
        self.live.fetch_sub(1, Ordering::SeqCst);
    }

    fn wanted(&self) -> usize {
        match self.mode {
            Resplit::Off => 0,
            Resplit::Forced => 1,
            // Fewer live tasks than workers ⇒ at least that many workers
            // have nothing left to steal.
            Resplit::Adaptive => self
                .workers
                .saturating_sub(self.live.load(Ordering::Relaxed)),
        }
    }

    fn next_tid(&self) -> u64 {
        self.next_tid.fetch_add(1, Ordering::Relaxed) as u64
    }
}

/// Node-entry re-split check shared by both task drivers: donate the
/// shallowest pending siblings of the current DFS path while the host
/// still wants tasks. Shallowest first — those subtrees are the largest,
/// so one donation feeds an idle worker for longest.
pub(crate) fn maybe_donate(
    host: Option<&dyn DonationHost>,
    path: &[Decision],
    slots: &mut [DonationSlot],
    start_incumbent: usize,
    stats: &mut SearchStats,
) {
    let Some(host) = host else { return };
    let mut want = host.wanted();
    if want == 0 {
        return;
    }
    let mut donated = 0u64;
    for slot in slots.iter_mut() {
        if want == 0 {
            break;
        }
        if slot.donated.is_some() {
            continue;
        }
        let mut prefix = path[..slot.depth].to_vec();
        prefix.push(slot.sibling);
        slot.donated = Some(host.donate(prefix, start_incumbent));
        donated += 1;
        want -= 1;
    }
    if donated > 0 {
        stats.resplits += 1;
        stats.resplit_subtasks += donated;
        let obs = crate::obs::engine_obs();
        obs.resplits.inc();
        obs.resplit_subtasks.add(donated);
    }
}

/// One DFS-ordered event recorded by a parallel maximum-search task
/// driver, folded by the merge phase (see the module docs).
#[derive(Debug, Clone)]
pub(crate) enum MergeEvent {
    /// A leaf piece that improved the task's local incumbent.
    Found {
        /// Size of the piece.
        size: usize,
        /// Members (component-local ids).
        piece: Vec<kr_graph::VertexId>,
    },
    /// Point where a pending sibling branch was donated as the named
    /// task; the child task's events splice in here — exactly where the
    /// donor would have walked that subtree.
    Child(u64),
}

fn deadline_of(cfg: &AlgoConfig) -> Option<std::time::Instant> {
    cfg.time_limit_ms
        .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms))
}

/// Parallel [`crate::enumerate_maximal`]. Requires `cfg.prune_candidates`
/// (callers dispatch NaiveEnum to the sequential engine). One pool serves
/// the whole query: the preprocessing phases and the subtask phase.
pub(crate) fn enumerate_parallel(problem: &ProblemInstance, cfg: &AlgoConfig) -> EnumResult {
    let threads = resolve_threads(cfg.threads);
    let pool = make_pool(threads);
    let comps = problem.preprocess_on(&pool);
    enumerate_on(&comps, cfg, &pool)
}

/// [`enumerate_parallel`] over already-preprocessed components (the
/// serving layer's cache-hit path); builds the query's pool itself.
pub(crate) fn enumerate_parallel_prepared(
    comps: &[LocalComponent],
    cfg: &AlgoConfig,
) -> EnumResult {
    let pool = make_pool(resolve_threads(cfg.threads));
    enumerate_on(comps, cfg, &pool)
}

/// Everything an enumeration subtask needs, bundled copyably so donated
/// tasks can be spawned recursively from inside a running one.
#[derive(Clone, Copy)]
struct EnumCtx<'env> {
    comps: &'env [LocalComponent],
    cfg: &'env AlgoConfig,
    deadline: Option<std::time::Instant>,
    shared: &'env ResplitShared,
    results: &'env Mutex<Vec<(CoreSink, SearchStats, bool)>>,
    spawner: std::thread::ThreadId,
}

/// Spawns one enumeration subtask (initial or donated) onto the scope.
fn spawn_enum_task<'scope, 'env: 'scope>(
    s: &rayon::Scope<'scope>,
    ctx: EnumCtx<'env>,
    ci: usize,
    prefix: Vec<Decision>,
) {
    ctx.shared.task_spawned();
    crate::obs::engine_obs().pool_tasks.inc();
    s.spawn(move |s| {
        if std::thread::current().id() != ctx.spawner {
            crate::obs::engine_obs().pool_tasks_stolen.inc();
        }
        let host = EnumHost { s, ctx, ci };
        let mut driver = Driver::new(&ctx.comps[ci], ctx.cfg, ctx.deadline).with_host(&host);
        driver.run_prefix(&prefix);
        ctx.results
            .lock()
            .expect("results lock")
            .push((driver.sink, driver.stats, driver.aborted));
        ctx.shared.task_finished();
    });
}

struct EnumHost<'a, 'scope, 'env> {
    s: &'a rayon::Scope<'scope>,
    ctx: EnumCtx<'env>,
    ci: usize,
}

impl<'a, 'scope, 'env: 'scope> DonationHost for EnumHost<'a, 'scope, 'env> {
    fn wanted(&self) -> usize {
        self.ctx.shared.wanted()
    }

    fn donate(&self, prefix: Vec<Decision>, _start_incumbent: usize) -> u64 {
        let tid = self.ctx.shared.next_tid();
        spawn_enum_task(self.s, self.ctx, self.ci, prefix);
        tid
    }
}

pub(crate) fn enumerate_on(
    comps: &[LocalComponent],
    cfg: &AlgoConfig,
    pool: &rayon::ThreadPool,
) -> EnumResult {
    let threads = pool.current_num_threads();
    let deadline = deadline_of(cfg);
    let depth = split_depth(threads);

    // Phase 1: frontier generation, one generator driver per component.
    let mut stats = SearchStats::default();
    let mut completed = true;
    let mut sink = CoreSink::new();
    let mut tasks: Vec<(usize, Vec<Decision>)> = Vec::new();
    let mut generators: Vec<Driver<'_>> = Vec::new();
    for (ci, comp) in comps.iter().enumerate() {
        let mut driver = Driver::new(comp, cfg, deadline);
        for prefix in driver.collect_frontier(depth) {
            tasks.push((ci, prefix));
        }
        generators.push(driver);
    }

    // Phase 2: run subtasks on the query's pool. A running task that
    // sees the pool starving re-splits (per `cfg.resplit`): pending
    // sibling branches of its DFS path are spawned onto the same scope
    // as fresh tasks. The sink union below is traversal-independent, so
    // donated results merge exactly like initial ones.
    crate::obs::engine_obs()
        .subtasks_split
        .add(tasks.len() as u64);
    let shared = ResplitShared::new(tasks.len(), threads, cfg.resplit);
    let results: Mutex<Vec<(CoreSink, SearchStats, bool)>> = Mutex::new(Vec::new());
    {
        let ctx = EnumCtx {
            comps,
            cfg,
            deadline,
            shared: &shared,
            results: &results,
            spawner: std::thread::current().id(),
        };
        pool.scope(|s| {
            for (ci, prefix) in &tasks {
                spawn_enum_task(s, ctx, *ci, prefix.clone());
            }
        });
    }
    let task_results = results.into_inner().expect("results lock");

    // Phase 3: merge. Cross-task duplicates are possible (the same leaf
    // piece is reachable in several subtrees); the sink dedups them. With
    // the maximal check on, every deduplicated core is final, so this is
    // also where a streaming hook fires — exactly once per core.
    let stream = if cfg.maximal_check {
        cfg.on_core.clone()
    } else {
        None
    };
    let push = |sink: &mut CoreSink, core: KrCore| match &stream {
        Some(hook) => {
            if sink.push(core.clone()) {
                hook.emit(&core);
            }
        }
        None => {
            sink.push(core);
        }
    };
    for driver in generators {
        for core in driver.sink.into_cores() {
            push(&mut sink, core);
        }
        merge_stats(&mut stats, driver.stats);
        completed &= !driver.aborted;
    }
    for (task_sink, task_stats, aborted) in task_results {
        for core in task_sink.into_cores() {
            push(&mut sink, core);
        }
        merge_stats(&mut stats, task_stats);
        completed &= !aborted;
    }
    let mut cores = if cfg.maximal_check {
        sink.into_cores()
    } else {
        sink.into_maximal()
    };
    cores.sort_by(|a, b| a.vertices.cmp(&b.vertices));
    EnumResult {
        cores,
        stats,
        completed,
    }
}

/// Parallel [`crate::find_maximum`] (see the module docs for the
/// equivalence argument). One pool serves the whole query.
pub(crate) fn find_maximum_parallel(problem: &ProblemInstance, cfg: &AlgoConfig) -> MaxResult {
    let threads = resolve_threads(cfg.threads);
    let pool = make_pool(threads);
    let comps = problem.preprocess_on(&pool);
    find_maximum_on(&comps, cfg, &pool)
}

/// [`find_maximum_parallel`] over already-preprocessed components (the
/// serving layer's cache-hit path); builds the query's pool itself.
pub(crate) fn find_maximum_parallel_prepared(
    comps: &[LocalComponent],
    cfg: &AlgoConfig,
) -> MaxResult {
    let pool = make_pool(resolve_threads(cfg.threads));
    find_maximum_on(comps, cfg, &pool)
}

pub(crate) fn find_maximum_on(
    comps: &[LocalComponent],
    cfg: &AlgoConfig,
    pool: &rayon::ThreadPool,
) -> MaxResult {
    let threads = pool.current_num_threads();
    let deadline = deadline_of(cfg);
    let depth = split_depth(threads);

    // Phase 1: frontier generation in component order, carrying the
    // generator incumbent across components (sequential-prefix knowledge
    // only, so components skipped here would be skipped sequentially too).
    // The DFS-ordered merge plan: shallow finds inline, subtasks by index
    // into `tasks`/`task_slots` (structural association — both phases
    // address a task by the same index).
    enum Step {
        Found {
            ci: usize,
            size: usize,
            piece: Vec<kr_graph::VertexId>,
        },
        Task(usize),
    }
    struct Task {
        ci: usize,
        prefix: Vec<crate::search::Decision>,
        start_incumbent: usize,
    }
    let mut stats = SearchStats::default();
    let mut completed = true;
    let mut steps: Vec<Step> = Vec::new();
    let mut tasks: Vec<Task> = Vec::new();
    let mut gen_incumbent = 0usize;
    for (ci, comp) in comps.iter().enumerate() {
        if comp.len() <= gen_incumbent {
            stats.bound_prunes += 1;
            continue;
        }
        let mut driver = MaxDriver::new(comp, cfg, deadline, gen_incumbent, None);
        let evs = driver.collect_frontier(depth);
        gen_incumbent = gen_incumbent.max(driver.best_len);
        merge_stats(&mut stats, driver.stats);
        completed &= !driver.aborted;
        for event in evs {
            match event {
                MaxEvent::Found { size, piece } => steps.push(Step::Found { ci, size, piece }),
                MaxEvent::Task {
                    prefix,
                    start_incumbent,
                } => {
                    steps.push(Step::Task(tasks.len()));
                    tasks.push(Task {
                        ci,
                        prefix,
                        start_incumbent,
                    });
                }
            }
        }
    }

    // Phase 2: run subtasks, sharing the incumbent through an atomic.
    // Tasks may re-split (per `cfg.resplit`); every task — initial or
    // donated — deposits its DFS-ordered events under its task id.
    crate::obs::engine_obs()
        .subtasks_split
        .add(tasks.len() as u64);
    let shared = ResplitShared::new(tasks.len(), threads, cfg.resplit);
    let outcomes: Mutex<HashMap<u64, MaxTaskOutcome>> = Mutex::new(HashMap::new());
    let global = AtomicUsize::new(gen_incumbent);
    {
        let ctx = MaxCtx {
            comps,
            cfg,
            deadline,
            shared: &shared,
            outcomes: &outcomes,
            global: &global,
            spawner: std::thread::current().id(),
        };
        pool.scope(|s| {
            for (tid, task) in tasks.iter().enumerate() {
                spawn_max_task(
                    s,
                    ctx,
                    tid as u64,
                    task.ci,
                    task.prefix.clone(),
                    task.start_incumbent,
                );
            }
        });
    }
    let mut outcomes = outcomes.into_inner().expect("outcomes lock");

    // Phase 3: merge in DFS step order with a carried incumbent. A
    // donated task's events splice in at its `Child` marker — exactly
    // where the donor would have walked that sibling subtree — so the
    // fold sees finds in sequential DFS order.
    let mut best: Option<KrCore> = None;
    let mut incumbent = 0usize;
    for step in steps {
        match step {
            Step::Found { ci, size, piece } => {
                if size > incumbent && !piece.is_empty() {
                    incumbent = size;
                    best = Some(KrCore::new(comps[ci].globalize(&piece)));
                }
            }
            Step::Task(i) => fold_task(
                i as u64,
                tasks[i].ci,
                comps,
                &mut outcomes,
                &mut incumbent,
                &mut best,
                &mut stats,
                &mut completed,
            ),
        }
    }
    debug_assert!(
        outcomes.is_empty(),
        "every donated task is reachable from an initial task's events"
    );
    MaxResult {
        core: best,
        stats,
        completed,
    }
}

/// Result of one maximum-search subtask (initial or donated).
struct MaxTaskOutcome {
    events: Vec<MergeEvent>,
    stats: SearchStats,
    aborted: bool,
}

/// Everything a maximum-search subtask needs, bundled copyably so donated
/// tasks can be spawned recursively from inside a running one.
#[derive(Clone, Copy)]
struct MaxCtx<'env> {
    comps: &'env [LocalComponent],
    cfg: &'env AlgoConfig,
    deadline: Option<std::time::Instant>,
    shared: &'env ResplitShared,
    outcomes: &'env Mutex<HashMap<u64, MaxTaskOutcome>>,
    global: &'env AtomicUsize,
    spawner: std::thread::ThreadId,
}

/// Spawns one maximum-search subtask (initial or donated) onto the scope.
fn spawn_max_task<'scope, 'env: 'scope>(
    s: &rayon::Scope<'scope>,
    ctx: MaxCtx<'env>,
    tid: u64,
    ci: usize,
    prefix: Vec<Decision>,
    start_incumbent: usize,
) {
    ctx.shared.task_spawned();
    crate::obs::engine_obs().pool_tasks.inc();
    s.spawn(move |s| {
        if std::thread::current().id() != ctx.spawner {
            crate::obs::engine_obs().pool_tasks_stolen.inc();
        }
        let host = MaxHost { s, ctx, ci };
        let mut driver = MaxDriver::new(
            &ctx.comps[ci],
            ctx.cfg,
            ctx.deadline,
            start_incumbent,
            Some(ctx.global),
        )
        .with_host(&host);
        driver.run_prefix(&prefix);
        let outcome = MaxTaskOutcome {
            events: driver.events,
            stats: driver.stats,
            aborted: driver.aborted,
        };
        ctx.outcomes
            .lock()
            .expect("outcomes lock")
            .insert(tid, outcome);
        ctx.shared.task_finished();
    });
}

struct MaxHost<'a, 'scope, 'env> {
    s: &'a rayon::Scope<'scope>,
    ctx: MaxCtx<'env>,
    ci: usize,
}

impl<'a, 'scope, 'env: 'scope> DonationHost for MaxHost<'a, 'scope, 'env> {
    fn wanted(&self) -> usize {
        self.ctx.shared.wanted()
    }

    fn donate(&self, prefix: Vec<Decision>, start_incumbent: usize) -> u64 {
        let tid = self.ctx.shared.next_tid();
        spawn_max_task(self.s, self.ctx, tid, self.ci, prefix, start_incumbent);
        tid
    }
}

/// Folds one task's DFS-ordered events into the carried incumbent,
/// recursing into donated children at their `Child` markers.
#[allow(clippy::too_many_arguments)]
fn fold_task(
    tid: u64,
    ci: usize,
    comps: &[LocalComponent],
    outcomes: &mut HashMap<u64, MaxTaskOutcome>,
    incumbent: &mut usize,
    best: &mut Option<KrCore>,
    stats: &mut SearchStats,
    completed: &mut bool,
) {
    let outcome = outcomes.remove(&tid).expect("each task merged once");
    merge_stats(stats, outcome.stats);
    *completed &= !outcome.aborted;
    for event in outcome.events {
        match event {
            MergeEvent::Found { size, piece } => {
                if size > *incumbent && !piece.is_empty() {
                    *incumbent = size;
                    *best = Some(KrCore::new(comps[ci].globalize(&piece)));
                }
            }
            MergeEvent::Child(child) => {
                fold_task(
                    child, ci, comps, outcomes, incumbent, best, stats, completed,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_maximal;
    use crate::maximum::find_maximum;
    use kr_graph::Graph;
    use kr_similarity::{AttributeTable, Metric, Threshold};

    /// Three bridged cliques, mixed similarity (same shape the sequential
    /// engines are tested on).
    fn instance(r: f64) -> ProblemInstance {
        let mut edges = vec![];
        for group in [[0u32, 1, 2, 3], [3u32, 4, 5, 6], [3u32, 7, 8, 9]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((group[i], group[j]));
                }
            }
        }
        for v in [3u32, 7, 8, 9] {
            edges.push((v, 10));
        }
        let g = Graph::from_edges(11, &edges);
        let pts = vec![
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (5.0, 0.0),
            (10.0, 0.0),
            (11.0, 0.0),
            (10.0, 1.0),
            (5.0, 4.0),
            (6.0, 4.0),
            (5.0, 5.0),
            (6.0, 5.0),
        ];
        ProblemInstance::new(
            g,
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(r),
            2,
        )
    }

    #[test]
    fn parallel_enum_identical_to_sequential() {
        for r in [0.5, 7.0, 9.0, 100.0] {
            let p = instance(r);
            let seq = enumerate_maximal(&p, &AlgoConfig::adv_enum());
            for threads in [2, 4, 8] {
                let par =
                    enumerate_maximal(&p, &AlgoConfig::adv_enum_parallel().with_threads(threads));
                assert!(par.completed);
                assert_eq!(par.cores, seq.cores, "r={r} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_max_identical_to_sequential() {
        for r in [0.5, 7.0, 9.0, 100.0] {
            let p = instance(r);
            let seq = find_maximum(&p, &AlgoConfig::adv_max());
            for threads in [2, 4, 8] {
                let par = find_maximum(&p, &AlgoConfig::adv_max_parallel().with_threads(threads));
                assert!(par.completed);
                assert_eq!(
                    par.core.as_ref().map(|c| &c.vertices),
                    seq.core.as_ref().map(|c| &c.vertices),
                    "r={r} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn thread_knob_one_uses_sequential_engine() {
        let p = instance(7.0);
        let cfg = AlgoConfig::adv_enum_parallel().with_threads(1);
        // threads == 1 must route to the sequential engine and still agree.
        let a = enumerate_maximal(&p, &cfg);
        let b = enumerate_maximal(&p, &AlgoConfig::adv_enum());
        assert_eq!(a.cores, b.cores);
    }

    #[test]
    fn split_depth_scales() {
        assert_eq!(split_depth(1), 3); // 8 tasks
        assert_eq!(split_depth(4), 5); // 32 tasks
        assert!(split_depth(64) <= 10);
    }

    #[test]
    fn parallel_prepared_matches_and_streams() {
        let p = instance(7.0);
        let comps = p.preprocess();
        let seq = enumerate_maximal(&p, &AlgoConfig::adv_enum());
        let streamed = std::sync::Arc::new(Mutex::new(Vec::new()));
        let tap = streamed.clone();
        let cfg = AlgoConfig::adv_enum_parallel()
            .with_threads(4)
            .with_on_core(crate::config::CoreHook::new(
                move |c: &crate::result::KrCore| tap.lock().unwrap().push(c.clone()),
            ));
        let par = crate::enumerate_maximal_prepared(&comps, &cfg);
        assert_eq!(par.cores, seq.cores);
        let mut streamed = streamed.lock().unwrap().clone();
        streamed.sort_by(|a, b| a.vertices.cmp(&b.vertices));
        assert_eq!(streamed, seq.cores, "merge phase streams each core once");

        let max_seq = find_maximum(&p, &AlgoConfig::adv_max());
        let max_par =
            crate::find_maximum_prepared(&comps, &AlgoConfig::adv_max_parallel().with_threads(4));
        assert_eq!(
            max_par.core.as_ref().map(|c| &c.vertices),
            max_seq.core.as_ref().map(|c| &c.vertices),
        );
    }

    #[test]
    fn basic_enum_parallel_matches_without_maximal_check() {
        // No Theorem 6 check: the parallel merge must fall back to the
        // global subset post-filter and still agree with sequential.
        let p = instance(7.0);
        let seq = enumerate_maximal(&p, &AlgoConfig::basic_enum());
        let par = enumerate_maximal(&p, &AlgoConfig::basic_enum().with_threads(4));
        assert_eq!(par.cores, seq.cores);
    }
}
