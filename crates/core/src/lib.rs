//! # kr-core
//!
//! The paper's primary contribution: algorithms for enumerating all maximal
//! **(k,r)-cores** and finding the **maximum (k,r)-core** of an attributed
//! graph (Zhang et al., VLDB 2017).
//!
//! A (k,r)-core is a connected subgraph in which every vertex has at least
//! `k` neighbors inside the subgraph *and* every vertex pair is similar
//! w.r.t. a threshold `r`. Both problems are NP-hard; this crate implements
//! the full algorithm family evaluated in the paper:
//!
//! | paper name | here | ingredients |
//! |------------|------|-------------|
//! | NaiveEnum (Alg 1+2) | [`AlgoConfig::naive_enum`] | exhaustive set enumeration |
//! | BasicEnum | [`AlgoConfig::basic_enum`] | Thm 2 + Thm 3 pruning, best order |
//! | AdvEnum (Alg 3)   | [`AlgoConfig::adv_enum`] | + Thm 4 retention, Thm 5 early termination, Thm 6 maximal check |
//! | BasicMax  | [`AlgoConfig::basic_max`] | `|M|+|C|` bound, best order |
//! | AdvMax (Alg 5) | [`AlgoConfig::adv_max`] | + (k,k')-core bound (Alg 6, Thm 7) |
//! | Clique+ (Sec 3) | [`cliquebased::clique_based_maximal`] | maximal cliques of the similarity graph |
//!
//! Entry points: [`enumerate_maximal`] and [`find_maximum`] over a
//! [`ProblemInstance`].

pub mod bounds;
pub mod cliquebased;
pub mod component;
pub mod config;
pub mod decomp;
pub mod early_term;
pub mod enumerate;
pub mod maximal;
pub mod maximum;
pub(crate) mod obs;
pub mod order;
pub mod parallel;
pub mod problem;
pub mod result;
pub mod search;
pub mod verify;

pub use cliquebased::{clique_based_maximal, clique_based_maximal_budgeted};
pub use component::LocalComponent;
pub use config::{
    AlgoConfig, BoundKind, BranchPolicy, CancelFlag, CheckOrder, CoreHook, Resplit, SearchOrder,
};
pub use decomp::{
    build_index_for, read_indexed_snapshot_bytes, read_indexed_snapshot_file,
    write_indexed_snapshot_file, CandidateSet, DecompositionIndex,
};
pub use enumerate::{
    enumerate_maximal, enumerate_maximal_prepared, enumerate_maximal_prepared_on, EnumResult,
};
pub use maximum::{find_maximum, find_maximum_prepared, find_maximum_prepared_on, MaxResult};
pub use problem::ProblemInstance;
pub use result::KrCore;
pub use verify::{is_kr_core, verify_maximal_family};
