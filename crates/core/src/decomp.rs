//! (k,r)-core decomposition index: one precomputed hierarchy that serves
//! candidate sets for the *whole* (k,r) parameter space.
//!
//! (k,r)-cores are containment-monotone in both parameters: every
//! (k,r)-core is contained in the k-core of the graph that remains after
//! dropping r-dissimilar edges, and tightening either parameter only
//! shrinks that graph. The index exploits both axes:
//!
//! * **k axis** — the classic coreness ordering
//!   ([`kr_graph::core_decomposition`], one O(n+m) peel) answers "which
//!   vertices survive the k-core" for *every* k at once.
//! * **r axis** — a small ladder of similarity thresholds (*r-bands*,
//!   default quantiles of the sampled pairwise-metric distribution).
//!   For each band the index stores the coreness of every vertex in the
//!   band-filtered graph, i.e. the maximal k at which the vertex
//!   survives within that band.
//!
//! A query `(k, r)` picks the tightest band that is still a **sound
//! superset** of the query's filtered graph (for a distance threshold
//! the filtered graph grows with `r`, so the smallest band `>= r`; for a
//! similarity threshold it shrinks, so the largest band `<= r`) and
//! returns `{v : coreness_band(v) >= k}`. When no band bounds the query,
//! the unfiltered *structural* coreness — always a sound superset — is
//! the fallback. The candidate set then feeds
//! [`ProblemInstance::preprocess_with_candidates`], which pays the
//! similarity oracle only on candidate-internal edges instead of the
//! whole graph: the residual search the paper's engines run is
//! unchanged, it just starts from a far smaller frontier.
//!
//! The index is computed once per dataset (`krcore-cli ingest
//! --with-index`, or lazily by the server registry) and persisted as an
//! optional `.krb` section ([`kr_graph::snapshot::section::DECOMP_INDEX`])
//! so old readers skip it and old snapshots still serve without it. See
//! `docs/KRB_FORMAT.md` for the byte layout.

use crate::problem::ProblemInstance;
use kr_graph::maintain::{coreness_after_insert, coreness_after_remove, NeighborSource};
use kr_graph::snapshot::{
    add_graph_sections, get_u32, get_u64, put_u32, put_u64, section, Snapshot, SnapshotError,
    SnapshotWriter, SECTION_FLAG_OPTIONAL,
};
use kr_graph::{core_decomposition, AdjacencyList, Graph, VertexId};
use kr_similarity::snapshot::{encode_attributes, read_snapshot, DatasetSnapshot};
use kr_similarity::{
    similarity_quantile_exact, similarity_quantile_sampled, AttributeTable, Metric,
    SimilarityOracle, TableOracle, Threshold,
};
use std::io::Write;
use std::path::Path;

/// Quantiles (fraction-from-top of the pairwise metric distribution)
/// at which [`DecompositionIndex::build_default`] places its r-bands.
/// Geometric on both tails because that is where queries live: the
/// paper's similarity sweeps use top-permille thresholds (q near 0),
/// while its distance sweeps use kilometre radii that admit only a tiny
/// fraction of pairs (q near 1). Duplicate quantile values collapse, so
/// the realised band count is usually lower — on a sparse similarity
/// distribution the whole q >= 0.1 half dedups to a single zero band.
pub const DEFAULT_BAND_QUANTILES: [f64; 12] = [
    0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 0.7, 0.9, 0.97, 0.99, 0.997, 0.999,
];

/// Above this vertex count the default band thresholds come from a
/// seeded sample of vertex pairs instead of the exact O(n²) pairwise
/// distribution.
const EXACT_QUANTILE_CUTOFF: usize = 2_000;

/// Seed for the sampled quantile pass — fixed so the same dataset always
/// produces byte-identical index sections (the golden fixtures pin it).
const BAND_SAMPLE_SEED: u64 = 0xC0DE_BA5E;

/// Candidate vertex set resolved from the index for one `(k, r)` query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSet {
    /// Global vertex ids that may belong to some (k,r)-core — a sound
    /// superset of every (k,r)-core's vertex set at these parameters.
    pub vertices: Vec<VertexId>,
    /// Index of the band that bounded the query, or `None` when the
    /// structural (unfiltered) coreness fallback answered instead.
    pub band: Option<usize>,
}

/// The per-dataset (k,r)-core decomposition index. Immutable once built;
/// the server shares it via `Arc`.
#[derive(Debug, Clone, PartialEq)]
pub struct DecompositionIndex {
    /// True when the dataset's metric is a distance (threshold semantics
    /// `dist <= r`, filtered graph grows with `r`); false for similarity
    /// semantics (`sim >= r`, filtered graph shrinks as `r` grows).
    distance: bool,
    /// Band thresholds, strictly ascending.
    bands: Vec<f64>,
    /// Coreness of every vertex in the *unfiltered* graph — the pure k
    /// axis, sound for any `r`.
    structural: Vec<u32>,
    /// `band_core[b][v]`: coreness of `v` in the graph filtered at
    /// `bands[b]` — the maximal k at which `v` survives within band `b`.
    band_core: Vec<Vec<u32>>,
}

impl DecompositionIndex {
    /// Builds the index for `graph` over explicit band thresholds. The
    /// oracle's own threshold value is irrelevant (only its metric
    /// direction matters); non-finite, negative, and duplicate bands are
    /// dropped.
    pub fn build(graph: &Graph, oracle: &TableOracle, bands: &[f64]) -> Self {
        let distance = oracle.metric().is_distance();
        let mut bands: Vec<f64> = bands
            .iter()
            .copied()
            .filter(|b| b.is_finite() && *b >= 0.0)
            .collect();
        bands.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite bands"));
        bands.dedup();
        let structural = core_decomposition(graph).core;
        let band_core = bands
            .iter()
            .map(|&b| {
                let threshold = if distance {
                    Threshold::MaxDistance(b)
                } else {
                    Threshold::MinSimilarity(b)
                };
                let banded = oracle.with_threshold(threshold);
                let filtered = graph.filter_edges(|u, v| banded.is_similar(u, v));
                core_decomposition(&filtered).core
            })
            .collect();
        DecompositionIndex {
            distance,
            bands,
            structural,
            band_core,
        }
    }

    /// [`DecompositionIndex::build`] with band thresholds derived from
    /// the dataset itself: the [`DEFAULT_BAND_QUANTILES`] of the pairwise
    /// metric distribution (exact below `EXACT_QUANTILE_CUTOFF`
    /// vertices, seeded sampling above — deterministic either way).
    pub fn build_default(graph: &Graph, oracle: &TableOracle) -> Self {
        let n = graph.num_vertices();
        if n < 2 {
            return DecompositionIndex::build(graph, oracle, &[]);
        }
        let bands: Vec<f64> = DEFAULT_BAND_QUANTILES
            .iter()
            .map(|&q| {
                if n <= EXACT_QUANTILE_CUTOFF {
                    similarity_quantile_exact(oracle, n, q)
                } else {
                    let samples = 200_000.min(n.saturating_mul(32));
                    similarity_quantile_sampled(oracle, n, q, samples, BAND_SAMPLE_SEED)
                }
            })
            .collect();
        DecompositionIndex::build(graph, oracle, &bands)
    }

    /// Number of vertices the index covers.
    pub fn num_vertices(&self) -> usize {
        self.structural.len()
    }

    /// The band thresholds, strictly ascending.
    pub fn bands(&self) -> &[f64] {
        &self.bands
    }

    /// True when the index was built for distance-threshold semantics.
    pub fn is_distance(&self) -> bool {
        self.distance
    }

    /// Heap footprint of the index in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bands.len() * 8
            + self.structural.len() * 4
            + self.band_core.iter().map(|c| c.len() * 4).sum::<usize>()
    }

    /// Picks the tightest band that is a sound superset of the query's
    /// filtered graph, or `None` when only the structural fallback is
    /// sound: for distance thresholds the filtered graph *grows* with
    /// `r`, so any band `>= r` over-approximates it (smallest wins); for
    /// similarity thresholds it *shrinks* as `r` grows, so any band
    /// `<= r` over-approximates it (largest wins).
    fn band_for(&self, r: f64) -> Option<usize> {
        if self.distance {
            self.bands.iter().position(|&b| b >= r)
        } else {
            self.bands.iter().rposition(|&b| b <= r)
        }
    }

    /// Resolves the candidate vertex set for a `(k, r)` query: every
    /// vertex of every (k,r)-core at these parameters is in the returned
    /// set (soundness is pinned by the `decomp_prop` harness — the set
    /// may over-approximate, never under-approximate).
    ///
    /// # Panics
    /// Panics when `threshold`'s direction contradicts the metric family
    /// the index was built for — the same configuration bug
    /// [`TableOracle::new`] rejects.
    pub fn candidates(&self, k: u32, threshold: Threshold) -> CandidateSet {
        match (self.distance, threshold) {
            (true, Threshold::MinSimilarity(_)) | (false, Threshold::MaxDistance(_)) => {
                panic!("threshold direction contradicts the index's metric family")
            }
            _ => {}
        }
        let band = self.band_for(threshold.value());
        let core: &[u32] = match band {
            Some(b) => &self.band_core[b],
            None => &self.structural,
        };
        let vertices = (0..core.len() as VertexId)
            .filter(|&v| core[v as usize] >= k)
            .collect();
        CandidateSet { vertices, band }
    }

    /// The threshold object for band `b`'s filter, in the index's metric
    /// direction.
    fn band_threshold(&self, b: usize) -> Threshold {
        if self.distance {
            Threshold::MaxDistance(self.bands[b])
        } else {
            Threshold::MinSimilarity(self.bands[b])
        }
    }

    /// Maintains the index through one edge insertion: `adj` must already
    /// contain `{u, v}` and `oracle` must carry the current attributes
    /// (its own threshold is irrelevant). The structural coreness and
    /// every band whose filter admits the edge are repaired by the
    /// subcore-bounded traversal of [`kr_graph::maintain`] — band graphs
    /// are never materialized; band adjacency is the structural
    /// neighborhood filtered through the oracle at the band's threshold.
    /// Returns the number of (vertex, layer) core numbers that changed.
    pub fn apply_insert(
        &mut self,
        adj: &AdjacencyList,
        oracle: &TableOracle,
        u: VertexId,
        v: VertexId,
    ) -> u64 {
        let mut changed = coreness_after_insert(&mut self.structural, adj, u, v).len() as u64;
        for b in 0..self.bands.len() {
            let banded = oracle.with_threshold(self.band_threshold(b));
            if banded.is_similar(u, v) {
                let view = BandView::new(adj, &banded);
                changed += coreness_after_insert(&mut self.band_core[b], &view, u, v).len() as u64;
            }
        }
        changed
    }

    /// Maintains the index through one edge removal: `adj` must no longer
    /// contain `{u, v}`. Mirror of [`DecompositionIndex::apply_insert`].
    pub fn apply_remove(
        &mut self,
        adj: &AdjacencyList,
        oracle: &TableOracle,
        u: VertexId,
        v: VertexId,
    ) -> u64 {
        let mut changed = coreness_after_remove(&mut self.structural, adj, u, v).len() as u64;
        for b in 0..self.bands.len() {
            let banded = oracle.with_threshold(self.band_threshold(b));
            if banded.is_similar(u, v) {
                let view = BandView::new(adj, &banded);
                changed += coreness_after_remove(&mut self.band_core[b], &view, u, v).len() as u64;
            }
        }
        changed
    }

    /// Maintains the index through one vertex attribute change: `adj` is
    /// the (unchanged) structural adjacency, `old`/`new` are oracles over
    /// the attribute tables before and after the change. The structural
    /// coreness is untouched; in each band, every incident structural
    /// edge whose similarity flipped at the band threshold is replayed as
    /// a band-edge insertion or removal. Returns the number of (vertex,
    /// layer) core numbers that changed.
    pub fn apply_attribute(
        &mut self,
        adj: &AdjacencyList,
        old: &TableOracle,
        new: &TableOracle,
        w: VertexId,
    ) -> u64 {
        let mut changed = 0u64;
        for b in 0..self.bands.len() {
            let threshold = self.band_threshold(b);
            let old_b = old.with_threshold(threshold);
            let new_b = new.with_threshold(threshold);
            // Edges whose band membership flips, pinned at their old
            // state until each is individually replayed below, so every
            // traversal sees a graph exactly one edge away from the
            // coreness array it repairs.
            let mut pinned: std::collections::HashMap<(VertexId, VertexId), bool> =
                std::collections::HashMap::new();
            for &x in adj.neighbors(w) {
                let was = old_b.is_similar(w, x);
                if was != new_b.is_similar(w, x) {
                    pinned.insert(edge_key(w, x), was);
                }
            }
            let flips: Vec<((VertexId, VertexId), bool)> =
                pinned.iter().map(|(&e, &was)| (e, was)).collect();
            for ((a, bv), was) in flips {
                pinned.remove(&(a, bv));
                let view = BandView {
                    adj,
                    oracle: &new_b,
                    pinned: &pinned,
                };
                changed += if was {
                    coreness_after_remove(&mut self.band_core[b], &view, a, bv).len() as u64
                } else {
                    coreness_after_insert(&mut self.band_core[b], &view, a, bv).len() as u64
                };
            }
        }
        changed
    }

    /// Encodes the index as a [`section::DECOMP_INDEX`] payload (layout
    /// in `docs/KRB_FORMAT.md`; all integers little-endian, `f64` as
    /// IEEE-754 bits).
    pub fn to_section_bytes(&self) -> Vec<u8> {
        let n = self.structural.len();
        let bc = self.bands.len();
        let mut out = Vec::with_capacity(16 + bc * 8 + (bc + 1) * n * 4);
        put_u32(&mut out, if self.distance { 1 } else { 2 });
        put_u32(&mut out, bc as u32);
        put_u64(&mut out, n as u64);
        for &b in &self.bands {
            put_u64(&mut out, b.to_bits());
        }
        for &c in &self.structural {
            put_u32(&mut out, c);
        }
        for core in &self.band_core {
            debug_assert_eq!(core.len(), n);
            for &c in core {
                put_u32(&mut out, c);
            }
        }
        out
    }

    /// Decodes a [`section::DECOMP_INDEX`] payload, re-validating every
    /// structural property (direction code, band monotonicity, exact
    /// payload length) — corrupt input that slipped past the container
    /// checksum yields a typed error, never a panic.
    pub fn from_section_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let malformed = |msg: String| SnapshotError::Malformed(format!("decomp index: {msg}"));
        if bytes.len() < 16 {
            return Err(malformed(format!(
                "{} bytes is shorter than the header",
                bytes.len()
            )));
        }
        let distance = match get_u32(bytes, 0) {
            1 => true,
            2 => false,
            other => return Err(malformed(format!("unknown direction code {other}"))),
        };
        let bc = get_u32(bytes, 4) as usize;
        let n64 = get_u64(bytes, 8);
        let n = usize::try_from(n64)
            .ok()
            .filter(|&n| n <= bytes.len())
            .ok_or_else(|| malformed(format!("vertex count {n64} exceeds the payload")))?;
        let expected = 16usize
            .checked_add(
                bc.checked_mul(8)
                    .ok_or_else(|| malformed("band count overflows".into()))?,
            )
            .and_then(|x| x.checked_add((bc + 1).checked_mul(n)?.checked_mul(4)?))
            .ok_or_else(|| malformed("size overflows".into()))?;
        if bytes.len() != expected {
            return Err(malformed(format!(
                "payload is {} bytes, layout requires {expected}",
                bytes.len()
            )));
        }
        let mut at = 16;
        let mut bands = Vec::with_capacity(bc);
        for _ in 0..bc {
            let b = f64::from_bits(get_u64(bytes, at));
            at += 8;
            if !b.is_finite() || b < 0.0 {
                return Err(malformed(format!("band threshold {b} is not finite >= 0")));
            }
            if bands.last().is_some_and(|&prev: &f64| prev >= b) {
                return Err(malformed(
                    "band thresholds are not strictly ascending".into(),
                ));
            }
            bands.push(b);
        }
        let read_core = |at: &mut usize| -> Vec<u32> {
            let core = (0..n).map(|i| get_u32(bytes, *at + i * 4)).collect();
            *at += n * 4;
            core
        };
        let structural = read_core(&mut at);
        let band_core = (0..bc).map(|_| read_core(&mut at)).collect();
        Ok(DecompositionIndex {
            distance,
            bands,
            structural,
            band_core,
        })
    }
}

/// Canonical undirected key for a pinned-edge map.
fn edge_key(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// One band's adjacency, viewed through the similarity filter: the
/// structural neighborhood with edges admitted by the band-threshold
/// oracle. `pinned` overrides individual edges to their pre-update state
/// while an attribute change's flips are replayed one at a time.
struct BandView<'a> {
    adj: &'a AdjacencyList,
    oracle: &'a TableOracle,
    pinned: &'a std::collections::HashMap<(VertexId, VertexId), bool>,
}

impl<'a> BandView<'a> {
    fn new(adj: &'a AdjacencyList, oracle: &'a TableOracle) -> Self {
        static EMPTY: std::sync::OnceLock<std::collections::HashMap<(VertexId, VertexId), bool>> =
            std::sync::OnceLock::new();
        BandView {
            adj,
            oracle,
            pinned: EMPTY.get_or_init(std::collections::HashMap::new),
        }
    }
}

impl NeighborSource for BandView<'_> {
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        for &x in self.adj.neighbors(v) {
            let similar = match self.pinned.get(&edge_key(v, x)) {
                Some(&state) => state,
                None => self.oracle.is_similar(v, x),
            };
            if similar {
                f(x);
            }
        }
    }
}

/// Serializes a dataset snapshot *with* its decomposition index: the
/// four standard sections of `kr_similarity::snapshot_to_bytes` plus an
/// optional [`section::DECOMP_INDEX`]. Deterministic byte for byte.
///
/// # Panics
/// Panics when `original_ids`/`attributes`/`index` do not cover the
/// graph's vertices or the metric does not fit the attribute family
/// (caller bugs, same contract as `kr_similarity::snapshot_to_bytes`).
pub fn indexed_snapshot_to_bytes(
    graph: &Graph,
    original_ids: &[u64],
    attributes: &AttributeTable,
    metric: Metric,
    index: &DecompositionIndex,
) -> Vec<u8> {
    assert_eq!(
        original_ids.len(),
        graph.num_vertices(),
        "original-id map must cover every vertex"
    );
    assert_eq!(
        attributes.len(),
        graph.num_vertices(),
        "attribute table must cover every vertex"
    );
    assert_eq!(
        index.num_vertices(),
        graph.num_vertices(),
        "decomposition index must cover every vertex"
    );
    let mut w = SnapshotWriter::new();
    add_graph_sections(&mut w, graph, original_ids);
    w.add_section(
        section::ATTRIBUTES,
        0,
        encode_attributes(attributes, metric),
    );
    w.add_section(
        section::DECOMP_INDEX,
        SECTION_FLAG_OPTIONAL,
        index.to_section_bytes(),
    );
    w.to_bytes()
}

/// Writes an indexed dataset snapshot file (see
/// [`indexed_snapshot_to_bytes`]).
pub fn write_indexed_snapshot_file(
    path: impl AsRef<Path>,
    graph: &Graph,
    original_ids: &[u64],
    attributes: &AttributeTable,
    metric: Metric,
    index: &DecompositionIndex,
) -> Result<(), SnapshotError> {
    let bytes = indexed_snapshot_to_bytes(graph, original_ids, attributes, metric, index);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    f.flush()?;
    Ok(())
}

/// Reads a dataset snapshot plus its decomposition index, when present.
/// Unindexed snapshots load with `None` — the index is optional in the
/// format and in every consumer.
pub fn read_indexed_snapshot_bytes(
    bytes: Vec<u8>,
) -> Result<(DatasetSnapshot, Option<DecompositionIndex>), SnapshotError> {
    let snap = Snapshot::from_bytes(bytes)?;
    let mut ds = read_snapshot(&snap)?;
    let index = match snap.section(section::DECOMP_INDEX) {
        Some(payload) => {
            let ix = DecompositionIndex::from_section_bytes(payload)?;
            if ix.num_vertices() != ds.graph.num_vertices() {
                return Err(SnapshotError::Malformed(format!(
                    "decomp index covers {} vertices, graph has {}",
                    ix.num_vertices(),
                    ds.graph.num_vertices()
                )));
            }
            if ix.is_distance() != ds.metric.is_distance() {
                return Err(SnapshotError::Malformed(
                    "decomp index direction contradicts the stored metric".to_string(),
                ));
            }
            // The attribute-only reader reports kind 5 as skipped; this
            // reader understood it.
            ds.skipped_sections.retain(|&k| k != section::DECOMP_INDEX);
            Some(ix)
        }
        None => None,
    };
    Ok((ds, index))
}

/// Reads an indexed dataset snapshot file (see
/// [`read_indexed_snapshot_bytes`]).
pub fn read_indexed_snapshot_file(
    path: impl AsRef<Path>,
) -> Result<(DatasetSnapshot, Option<DecompositionIndex>), SnapshotError> {
    read_indexed_snapshot_bytes(std::fs::read(path)?)
}

/// Builds the default index for an existing [`ProblemInstance`] (the
/// instance's `(k, r)` are irrelevant — the index covers the whole
/// parameter space).
pub fn build_index_for(problem: &ProblemInstance) -> DecompositionIndex {
    DecompositionIndex::build_default(problem.graph(), problem.oracle())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kr_similarity::Metric;

    /// Two unit-square clusters 100 apart, bridged: rich (k,r) structure.
    fn cluster_instance() -> (Graph, TableOracle) {
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 4));
        let graph = Graph::from_edges(8, &edges);
        let pts = (0..8)
            .map(|i| {
                let off = if i < 4 { 0.0 } else { 100.0 };
                ((i % 4) as f64 + off, ((i / 2) % 2) as f64)
            })
            .collect();
        let oracle = TableOracle::new(
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(1.0),
        );
        (graph, oracle)
    }

    #[test]
    fn bands_sorted_deduped_and_sanitized() {
        let (g, o) = cluster_instance();
        let ix = DecompositionIndex::build(&g, &o, &[5.0, 2.0, 5.0, f64::NAN, -1.0, 200.0]);
        assert_eq!(ix.bands(), &[2.0, 5.0, 200.0]);
        assert!(ix.is_distance());
        assert_eq!(ix.num_vertices(), 8);
    }

    #[test]
    fn structural_matches_core_decomposition() {
        let (g, o) = cluster_instance();
        let ix = DecompositionIndex::build(&g, &o, &[]);
        assert_eq!(ix.structural, core_decomposition(&g).core);
    }

    #[test]
    fn band_selection_distance_smallest_geq() {
        let (g, o) = cluster_instance();
        let ix = DecompositionIndex::build(&g, &o, &[2.0, 5.0, 200.0]);
        assert_eq!(ix.band_for(1.0), Some(0));
        assert_eq!(ix.band_for(2.0), Some(0));
        assert_eq!(ix.band_for(3.0), Some(1));
        assert_eq!(ix.band_for(150.0), Some(2));
        assert_eq!(
            ix.band_for(500.0),
            None,
            "beyond all bands: structural fallback"
        );
    }

    #[test]
    fn band_selection_similarity_largest_leq() {
        let o = TableOracle::new(
            AttributeTable::keywords(vec![vec![(1, 1.0)], vec![(1, 1.0)], vec![(2, 1.0)]]),
            Metric::WeightedJaccard,
            Threshold::MinSimilarity(0.5),
        );
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let ix = DecompositionIndex::build(&g, &o, &[0.2, 0.5, 0.8]);
        assert!(!ix.is_distance());
        assert_eq!(ix.band_for(0.9), Some(2));
        assert_eq!(ix.band_for(0.5), Some(1));
        assert_eq!(ix.band_for(0.3), Some(0));
        assert_eq!(
            ix.band_for(0.1),
            None,
            "below all bands: structural fallback"
        );
    }

    #[test]
    fn candidates_are_sound_superset_of_preprocessed_core() {
        let (g, o) = cluster_instance();
        let ix = DecompositionIndex::build_default(&g, &o);
        for k in 1..=4u32 {
            for r in [0.5, 1.0, 1.5, 5.0, 99.0, 150.0, 1000.0] {
                let cand = ix.candidates(k, Threshold::MaxDistance(r));
                let problem = ProblemInstance::from_oracle(
                    g.clone(),
                    o.with_threshold(Threshold::MaxDistance(r)),
                    k,
                );
                for v in problem.preprocessed_core() {
                    assert!(
                        cand.vertices.contains(&v),
                        "k={k} r={r}: core vertex {v} missing from candidates"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn direction_mismatch_panics() {
        let (g, o) = cluster_instance();
        let ix = DecompositionIndex::build(&g, &o, &[1.0]);
        ix.candidates(2, Threshold::MinSimilarity(0.5));
    }

    #[test]
    fn section_roundtrip_is_exact() {
        let (g, o) = cluster_instance();
        let ix = DecompositionIndex::build_default(&g, &o);
        let bytes = ix.to_section_bytes();
        let back = DecompositionIndex::from_section_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, ix);
        assert_eq!(
            back.to_section_bytes(),
            bytes,
            "re-encode is byte-identical"
        );
    }

    #[test]
    fn section_decode_rejects_corruption() {
        let (g, o) = cluster_instance();
        let ix = DecompositionIndex::build(&g, &o, &[1.0, 5.0]);
        let good = ix.to_section_bytes();
        // Truncation at every boundary: typed error, never a panic.
        for cut in 0..good.len() {
            assert!(
                DecompositionIndex::from_section_bytes(&good[..cut]).is_err(),
                "truncation to {cut} bytes must not decode"
            );
        }
        // Bad direction code.
        let mut bad = good.clone();
        bad[0..4].copy_from_slice(&9u32.to_le_bytes());
        assert!(DecompositionIndex::from_section_bytes(&bad).is_err());
        // Non-ascending bands.
        let mut bad = good.clone();
        let (a, b) = (16, 24);
        let tmp: Vec<u8> = bad[a..a + 8].to_vec();
        bad.copy_within(b..b + 8, a);
        bad[b..b + 8].copy_from_slice(&tmp);
        assert!(DecompositionIndex::from_section_bytes(&bad).is_err());
        // Oversized vertex count.
        let mut bad = good.clone();
        bad[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(DecompositionIndex::from_section_bytes(&bad).is_err());
    }

    #[test]
    fn indexed_snapshot_roundtrip_and_plain_reader_skips() {
        let (g, o) = cluster_instance();
        let ix = DecompositionIndex::build_default(&g, &o);
        let ids: Vec<u64> = (0..8).map(|i| i * 10 + 1).collect();
        let bytes = indexed_snapshot_to_bytes(&g, &ids, o.attributes(), o.metric(), &ix);
        // The indexed reader recovers everything.
        let (ds, loaded) = read_indexed_snapshot_bytes(bytes.clone()).expect("indexed load");
        assert_eq!(ds.graph, g);
        assert_eq!(ds.original_ids, ids);
        assert!(ds.skipped_sections.is_empty());
        assert_eq!(loaded, Some(ix));
        // A reader that predates the index (the plain attribute reader)
        // loads the same bytes and reports the section as skipped.
        let plain = kr_similarity::read_snapshot_bytes(bytes).expect("plain load");
        assert_eq!(plain.graph, g);
        assert_eq!(plain.skipped_sections, vec![section::DECOMP_INDEX]);
    }

    /// Deterministic xorshift stream for the maintenance equivalence run.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    #[test]
    fn incremental_maintenance_matches_from_scratch_rebuild() {
        // Random geometric instance, random insert/delete/attribute
        // stream; after every update the maintained index must equal a
        // from-scratch build over the same bands.
        let n = 24usize;
        let mut rng = Rng(0xDECA_FBAD_0000_0001);
        let mut pts: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                (
                    (rng.next() % 100) as f64 / 10.0,
                    (rng.next() % 100) as f64 / 10.0,
                )
            })
            .collect();
        let mut edges = Vec::new();
        for _ in 0..40 {
            let u = (rng.next() % n as u64) as VertexId;
            let v = (rng.next() % n as u64) as VertexId;
            if u != v {
                edges.push((u, v));
            }
        }
        let mut adj = AdjacencyList::from_graph(&Graph::from_edges(n, &edges));
        let oracle = |pts: &Vec<(f64, f64)>| {
            TableOracle::new(
                AttributeTable::points(pts.clone()),
                Metric::Euclidean,
                Threshold::MaxDistance(1.0),
            )
        };
        let bands = [2.0, 5.0, 9.0];
        let mut ix = DecompositionIndex::build(&adj.to_graph(), &oracle(&pts), &bands);
        for step in 0..120 {
            match rng.next() % 3 {
                0 | 1 => {
                    let u = (rng.next() % n as u64) as VertexId;
                    let v = (rng.next() % n as u64) as VertexId;
                    if u == v {
                        continue;
                    }
                    if adj.has_edge(u, v) {
                        adj.remove_edge(u, v);
                        ix.apply_remove(&adj, &oracle(&pts), u, v);
                    } else {
                        adj.insert_edge(u, v);
                        ix.apply_insert(&adj, &oracle(&pts), u, v);
                    }
                }
                _ => {
                    let w = (rng.next() % n as u64) as VertexId;
                    let old = oracle(&pts);
                    pts[w as usize] = (
                        (rng.next() % 100) as f64 / 10.0,
                        (rng.next() % 100) as f64 / 10.0,
                    );
                    ix.apply_attribute(&adj, &old, &oracle(&pts), w);
                }
            }
            let rebuilt = DecompositionIndex::build(&adj.to_graph(), &oracle(&pts), &bands);
            assert_eq!(ix, rebuilt, "diverged at step {step}");
        }
    }

    #[test]
    fn incremental_maintenance_matches_for_similarity_metric() {
        // Same pin for the similarity direction (weighted Jaccard over
        // keyword lists), where the band filter *shrinks* as r grows.
        let n = 12usize;
        let mut rng = Rng(0x5EED_5EED_5EED_5EED);
        let mut lists: Vec<Vec<(u32, f64)>> = (0..n)
            .map(|_| {
                (0..3)
                    .map(|_| ((rng.next() % 6) as u32, 1.0 + (rng.next() % 3) as f64))
                    .collect()
            })
            .collect();
        let oracle = |lists: &Vec<Vec<(u32, f64)>>| {
            TableOracle::new(
                AttributeTable::keywords(lists.clone()),
                Metric::WeightedJaccard,
                Threshold::MinSimilarity(0.5),
            )
        };
        let mut adj = AdjacencyList::from_graph(&Graph::empty(n));
        let bands = [0.2, 0.5, 0.8];
        let mut ix = DecompositionIndex::build(&adj.to_graph(), &oracle(&lists), &bands);
        assert!(!ix.is_distance());
        for step in 0..100 {
            match rng.next() % 4 {
                3 => {
                    let w = (rng.next() % n as u64) as VertexId;
                    let old = oracle(&lists);
                    lists[w as usize] = (0..3)
                        .map(|_| ((rng.next() % 6) as u32, 1.0 + (rng.next() % 3) as f64))
                        .collect();
                    ix.apply_attribute(&adj, &old, &oracle(&lists), w);
                }
                _ => {
                    let u = (rng.next() % n as u64) as VertexId;
                    let v = (rng.next() % n as u64) as VertexId;
                    if u == v {
                        continue;
                    }
                    if adj.has_edge(u, v) {
                        adj.remove_edge(u, v);
                        ix.apply_remove(&adj, &oracle(&lists), u, v);
                    } else {
                        adj.insert_edge(u, v);
                        ix.apply_insert(&adj, &oracle(&lists), u, v);
                    }
                }
            }
            let rebuilt = DecompositionIndex::build(&adj.to_graph(), &oracle(&lists), &bands);
            assert_eq!(ix, rebuilt, "diverged at step {step}");
        }
    }

    #[test]
    fn unindexed_snapshot_reads_as_none() {
        let (g, o) = cluster_instance();
        let ids: Vec<u64> = (0..8).collect();
        let bytes = kr_similarity::snapshot_to_bytes(&g, &ids, o.attributes(), o.metric());
        let (_, ix) = read_indexed_snapshot_bytes(bytes).expect("load");
        assert_eq!(ix, None);
    }
}
