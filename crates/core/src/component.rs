//! Local search arena.
//!
//! After preprocessing, each connected k-core component is renumbered to
//! `0..n` and equipped with adjacency lists plus *dissimilarity* lists (the
//! pairs that violate the similarity constraint — exactly the pairs the
//! paper's `DP(·)` counters range over). All search algorithms operate on
//! this arena with dense arrays.
//!
//! Both list families are stored in CSR form ([`kr_graph::Csr`]): one
//! offsets array plus one flat target arena each, so a vertex visit in the
//! search hot loop reads a contiguous slice instead of chasing a pointer
//! into a separately allocated `Vec`. A component is therefore five flat
//! allocations total, which also makes the serving layer's `Arc`-shared
//! cache entries cheap and their footprint exactly measurable
//! ([`LocalComponent::memory_bytes`]).

use kr_graph::{Csr, Graph, VertexId};
use kr_similarity::{
    build_dissimilarity_view, build_dissimilarity_view_on, DissimMode, DissimilarityLists,
    DissimilarityView, SimilarityOracle,
};

/// A renumbered connected component of the preprocessed k-core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalComponent {
    /// Adjacency (local ids), sorted per vertex, CSR-flattened.
    adj: Csr,
    /// Dissimilar partners (local ids): an eager CSR for small or
    /// similarity-heavy components (byte-identical to the pre-view
    /// layout), a lazy complement-of-similarity view for large
    /// dissimilarity-heavy ones (rows memoized on first slice access).
    dis: DissimilarityView,
    /// Total number of dissimilar unordered pairs.
    pub num_dissimilar_pairs: usize,
    /// Metric evaluations the dissimilarity build spent. The candidate
    /// indexes keep this far below the brute-force `n·(n-1)/2`; the
    /// serving layer and `bench_smoke` report it as the index-leverage
    /// counter.
    pub oracle_evals: u64,
    /// Map back to global vertex ids.
    pub local_to_global: Vec<VertexId>,
    /// The degree threshold the component was built for.
    pub k: u32,
}

impl LocalComponent {
    /// Builds the arena for `members` (global ids) of `graph`. The
    /// adjacency CSR is laid out in one pass (rows fill in local-id
    /// order); the dissimilarity view comes straight from
    /// [`build_dissimilarity_view`], which verifies only the pairs the
    /// oracle's candidate index produces and picks the eager or lazy
    /// representation per `mode`.
    pub fn build<O: SimilarityOracle>(
        graph: &Graph,
        oracle: &O,
        members: &[VertexId],
        k: u32,
        mode: DissimMode,
    ) -> Self {
        Self::build_impl(graph, members, k, |locals| {
            build_dissimilarity_view(oracle, locals, mode)
        })
    }

    /// [`LocalComponent::build`] with the candidate-pair verification
    /// shard-split across `pool` (the query's worker pool). The arena is
    /// identical to the serial build, byte for byte.
    pub fn build_on<O: SimilarityOracle + Sync>(
        graph: &Graph,
        oracle: &O,
        members: &[VertexId],
        k: u32,
        mode: DissimMode,
        pool: &rayon::ThreadPool,
    ) -> Self {
        Self::build_impl(graph, members, k, |locals| {
            build_dissimilarity_view_on(oracle, locals, pool, mode)
        })
    }

    fn build_impl(
        graph: &Graph,
        members: &[VertexId],
        k: u32,
        dissim: impl FnOnce(&[VertexId]) -> DissimilarityView,
    ) -> Self {
        let mut local_to_global = members.to_vec();
        local_to_global.sort_unstable();
        let n = local_to_global.len();
        let mut global_to_local = std::collections::HashMap::with_capacity(n);
        for (i, &g) in local_to_global.iter().enumerate() {
            global_to_local.insert(g, i as VertexId);
        }
        // Adjacency rows fill in increasing local id, so the CSR can be
        // appended in place; only each row's tail needs sorting (global
        // neighbor order does not imply local order).
        let mut adj_pairs: Vec<(VertexId, VertexId)> = Vec::new();
        for (i, &g) in local_to_global.iter().enumerate() {
            for &u in graph.neighbors(g) {
                if let Some(&lu) = global_to_local.get(&u) {
                    adj_pairs.push((i as VertexId, lu));
                }
            }
        }
        let adj = Csr::from_pairs(n, &adj_pairs);
        let d = dissim(&local_to_global);
        LocalComponent {
            adj,
            num_dissimilar_pairs: d.num_pairs(),
            oracle_evals: d.oracle_evals(),
            dis: d,
            local_to_global,
            k,
        }
    }

    /// Builds a component directly from local adjacency + dissimilarity
    /// lists (used by unit tests to craft exact scenarios). Rows are
    /// sorted and deduplicated, and **both** list families are
    /// symmetrized: if `u` lists `v`, then `v` gains `u` — an asymmetric
    /// input would otherwise make `has_edge(u, v)` / `are_dissimilar(u,
    /// v)` disagree with their mirrors and silently corrupt every degree
    /// and `DP(·)` counter built from the lists.
    ///
    /// # Panics
    /// Panics when a list references a vertex `>= n` or contains a self
    /// pair.
    pub fn from_parts(adj: Vec<Vec<VertexId>>, dis: Vec<Vec<VertexId>>, k: u32) -> Self {
        assert_eq!(adj.len(), dis.len());
        let n = adj.len();
        let symmetrized = |lists: &[Vec<VertexId>]| {
            let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
            for (u, list) in lists.iter().enumerate() {
                for &w in list {
                    assert!((w as usize) < n, "target {w} out of range for {n} vertices");
                    assert_ne!(w as usize, u, "self pair at {u}");
                    pairs.push((u as VertexId, w));
                    pairs.push((w, u as VertexId));
                }
            }
            Csr::from_pairs(n, &pairs)
        };
        let adj = symmetrized(&adj);
        let dis = symmetrized(&dis);
        let num_dissimilar_pairs = dis.total_targets() / 2;
        LocalComponent {
            adj,
            dis: DissimilarityView::Eager(DissimilarityLists {
                csr: dis,
                num_pairs: num_dissimilar_pairs,
                oracle_evals: 0,
            }),
            num_dissimilar_pairs,
            oracle_evals: 0,
            local_to_global: (0..n as VertexId).collect(),
            k,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.adj.num_rows()
    }

    /// True iff the component is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Sorted neighbors of local vertex `u` — a contiguous slice of the
    /// adjacency arena.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        self.adj.row(u)
    }

    /// Sorted dissimilar partners of local vertex `u` as a contiguous
    /// slice. On a lazy component this materializes and memoizes the
    /// row on first access — search paths that only need to *visit* the
    /// partners use [`LocalComponent::for_each_dissimilar`] instead, so
    /// rows materialize only for vertices the search branches on.
    #[inline]
    pub fn dissimilar(&self, u: VertexId) -> &[VertexId] {
        self.dis.row(u)
    }

    /// Visits the dissimilar partners of local vertex `u` in ascending
    /// order without materializing anything: the eager slice (or an
    /// already-memoized lazy row) when one exists, a streamed
    /// complement of the similarity row otherwise. The visit sequence
    /// is identical in both representations.
    ///
    #[inline(always)]
    pub fn for_each_dissimilar(&self, u: VertexId, f: impl FnMut(VertexId)) {
        self.dis.for_each(u, f)
    }

    /// The dissimilar row of local vertex `u` when it is resident —
    /// always on eager components, memoized rows only on lazy ones.
    /// Never materializes. See [`DissimilarityView::resident_row`].
    #[inline]
    pub fn dissimilar_resident(&self, u: VertexId) -> Option<&[VertexId]> {
        self.dis.resident_row(u)
    }

    /// True iff any dissimilar partner of local vertex `u` satisfies
    /// `pred`. Short-circuits at the first hit and never materializes —
    /// the hot maximality checks must not pay for full-row visits.
    #[inline]
    pub fn any_dissimilar_where(&self, u: VertexId, pred: impl FnMut(VertexId) -> bool) -> bool {
        self.dis.any_where(u, pred)
    }

    /// Degree of local vertex `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.adj.row_len(u)
    }

    /// Number of dissimilar partners of local vertex `u` (`O(1)` in
    /// both representations).
    #[inline]
    pub fn dissimilar_count(&self, u: VertexId) -> usize {
        self.dis.count(u)
    }

    /// The adjacency CSR (offsets + arena).
    pub fn adj_csr(&self) -> &Csr {
        &self.adj
    }

    /// The dissimilarity view (eager CSR or lazy complement).
    pub fn dissimilarity(&self) -> &DissimilarityView {
        &self.dis
    }

    /// True when the dissimilarity side is the lazy representation.
    pub fn is_dissimilarity_lazy(&self) -> bool {
        self.dis.is_lazy()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj.total_targets() / 2
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.adj.max_row_len()
    }

    /// Whether local vertices `u` and `v` are adjacent.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adj.contains(u, v)
    }

    /// Whether local vertices `u` and `v` are dissimilar.
    #[inline]
    pub fn are_dissimilar(&self, u: VertexId, v: VertexId) -> bool {
        self.dis.are_dissimilar(u, v)
    }

    /// Flat memory footprint in bytes: the struct itself plus the heap
    /// behind the adjacency CSR, the dissimilarity view, and the id
    /// map. For lazy components this grows as rows are materialized,
    /// so the serving layer's cache accounting re-samples it when it
    /// reports `resident_bytes`.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.adj.heap_bytes()
            + self.dis.heap_bytes()
            + self.local_to_global.capacity() * std::mem::size_of::<VertexId>()
    }

    /// Maps a local vertex set back to sorted global ids.
    pub fn globalize(&self, locals: &[VertexId]) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = locals
            .iter()
            .map(|&l| self.local_to_global[l as usize])
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kr_similarity::{AttributeTable, Metric, TableOracle, Threshold};

    #[test]
    fn builds_adjacency_and_dissimilarity() {
        // Global graph on vertices {2, 5, 7}: edges 2-5, 5-7.
        let g = Graph::from_edges(8, &[(2, 5), (5, 7), (0, 1)]);
        let oracle = TableOracle::new(
            AttributeTable::points(vec![
                (0.0, 0.0),
                (0.0, 0.0),
                (0.0, 0.0), // v2
                (0.0, 0.0),
                (0.0, 0.0),
                (1.0, 0.0), // v5
                (0.0, 0.0),
                (9.0, 0.0), // v7
            ]),
            Metric::Euclidean,
            Threshold::MaxDistance(2.0),
        );
        let c = LocalComponent::build(&g, &oracle, &[2, 5, 7], 1, DissimMode::Auto);
        assert_eq!(c.len(), 3);
        assert_eq!(c.local_to_global, vec![2, 5, 7]);
        // Local: 0=g2, 1=g5, 2=g7. Edges 0-1, 1-2.
        assert!(c.has_edge(0, 1));
        assert!(c.has_edge(1, 2));
        assert!(!c.has_edge(0, 2));
        assert_eq!(c.neighbors(1), &[0, 2]);
        // Distances: g2-g5 = 1 (similar), g5-g7 = 8 (dissimilar), g2-g7 = 9.
        assert!(c.are_dissimilar(1, 2));
        assert!(c.are_dissimilar(0, 2));
        assert!(!c.are_dissimilar(0, 1));
        assert_eq!(c.dissimilar(2), &[0, 1]);
        assert_eq!(c.num_dissimilar_pairs, 2);
        assert_eq!(c.num_edges(), 2);
        assert_eq!(c.max_degree(), 2);
        assert!(c.memory_bytes() > std::mem::size_of::<LocalComponent>());
    }

    #[test]
    fn globalize_sorts() {
        let g = Graph::from_edges(6, &[(1, 3), (3, 5)]);
        let oracle = TableOracle::new(
            AttributeTable::points(vec![(0.0, 0.0); 6]),
            Metric::Euclidean,
            Threshold::MaxDistance(1.0),
        );
        let c = LocalComponent::build(&g, &oracle, &[1, 3, 5], 1, DissimMode::Auto);
        assert_eq!(c.globalize(&[2, 0]), vec![1, 5]);
    }

    #[test]
    fn from_parts_computes_pairs() {
        let c = LocalComponent::from_parts(
            vec![vec![1], vec![0, 2], vec![1]],
            vec![vec![2], vec![], vec![0]],
            1,
        );
        assert_eq!(c.num_dissimilar_pairs, 1);
        assert!(c.are_dissimilar(0, 2));
        assert!(!c.are_dissimilar(0, 1));
    }

    #[test]
    fn from_parts_repairs_asymmetric_input() {
        // `dis` lists (0 -> 2) but not the mirror (2 -> 0), and `adj`
        // lists (0 -> 1) one-sidedly: the arena must repair both
        // asymmetries rather than answer inconsistently.
        let c = LocalComponent::from_parts(
            vec![vec![1], vec![2], vec![]],
            vec![vec![2], vec![], vec![]],
            1,
        );
        assert!(c.are_dissimilar(0, 2));
        assert!(c.are_dissimilar(2, 0));
        assert_eq!(c.dissimilar(2), &[0]);
        assert_eq!(c.num_dissimilar_pairs, 1);
        assert!(c.has_edge(1, 0));
        assert_eq!(c.neighbors(2), &[1]);
        assert_eq!(c.num_edges(), 2);
        assert_eq!(c.degree(1), 2);
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_out_of_range() {
        LocalComponent::from_parts(vec![vec![5], vec![]], vec![vec![], vec![]], 1);
    }
}
