//! Local search arena.
//!
//! After preprocessing, each connected k-core component is renumbered to
//! `0..n` and equipped with adjacency lists plus *dissimilarity* lists (the
//! pairs that violate the similarity constraint — exactly the pairs the
//! paper's `DP(·)` counters range over). All search algorithms operate on
//! this arena with dense arrays.

use kr_graph::{Graph, VertexId};
use kr_similarity::{build_dissimilarity_lists, SimilarityOracle};

/// A renumbered connected component of the preprocessed k-core.
#[derive(Debug, Clone)]
pub struct LocalComponent {
    /// Adjacency (local ids), sorted per vertex.
    pub adj: Vec<Vec<VertexId>>,
    /// Dissimilar partners (local ids), sorted per vertex.
    pub dis: Vec<Vec<VertexId>>,
    /// Total number of dissimilar unordered pairs.
    pub num_dissimilar_pairs: usize,
    /// Map back to global vertex ids.
    pub local_to_global: Vec<VertexId>,
    /// The degree threshold the component was built for.
    pub k: u32,
}

impl LocalComponent {
    /// Builds the arena for `members` (global ids) of `graph`, evaluating
    /// the oracle on all `|members|^2 / 2` pairs once.
    pub fn build<O: SimilarityOracle>(
        graph: &Graph,
        oracle: &O,
        members: &[VertexId],
        k: u32,
    ) -> Self {
        let mut local_to_global = members.to_vec();
        local_to_global.sort_unstable();
        let n = local_to_global.len();
        let mut global_to_local = std::collections::HashMap::with_capacity(n);
        for (i, &g) in local_to_global.iter().enumerate() {
            global_to_local.insert(g, i as VertexId);
        }
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for (i, &g) in local_to_global.iter().enumerate() {
            for &u in graph.neighbors(g) {
                if let Some(&lu) = global_to_local.get(&u) {
                    adj[i].push(lu);
                }
            }
            adj[i].sort_unstable();
        }
        let d = build_dissimilarity_lists(oracle, &local_to_global);
        LocalComponent {
            adj,
            dis: d.lists,
            num_dissimilar_pairs: d.num_pairs,
            local_to_global,
            k,
        }
    }

    /// Builds a component directly from local adjacency + dissimilarity
    /// lists (used by unit tests to craft exact scenarios).
    pub fn from_parts(adj: Vec<Vec<VertexId>>, dis: Vec<Vec<VertexId>>, k: u32) -> Self {
        assert_eq!(adj.len(), dis.len());
        let n = adj.len();
        let num_dissimilar_pairs = dis.iter().map(|l| l.len()).sum::<usize>() / 2;
        let mut adj = adj;
        let mut dis = dis;
        for l in adj.iter_mut().chain(dis.iter_mut()) {
            l.sort_unstable();
            l.dedup();
        }
        LocalComponent {
            adj,
            dis,
            num_dissimilar_pairs,
            local_to_global: (0..n as VertexId).collect(),
            k,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True iff the component is empty.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(|l| l.len()).sum::<usize>() / 2
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|l| l.len()).max().unwrap_or(0)
    }

    /// Whether local vertices `u` and `v` are adjacent.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Whether local vertices `u` and `v` are dissimilar.
    pub fn are_dissimilar(&self, u: VertexId, v: VertexId) -> bool {
        self.dis[u as usize].binary_search(&v).is_ok()
    }

    /// Maps a local vertex set back to sorted global ids.
    pub fn globalize(&self, locals: &[VertexId]) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = locals
            .iter()
            .map(|&l| self.local_to_global[l as usize])
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kr_similarity::{AttributeTable, Metric, TableOracle, Threshold};

    #[test]
    fn builds_adjacency_and_dissimilarity() {
        // Global graph on vertices {2, 5, 7}: edges 2-5, 5-7.
        let g = Graph::from_edges(8, &[(2, 5), (5, 7), (0, 1)]);
        let oracle = TableOracle::new(
            AttributeTable::points(vec![
                (0.0, 0.0),
                (0.0, 0.0),
                (0.0, 0.0), // v2
                (0.0, 0.0),
                (0.0, 0.0),
                (1.0, 0.0), // v5
                (0.0, 0.0),
                (9.0, 0.0), // v7
            ]),
            Metric::Euclidean,
            Threshold::MaxDistance(2.0),
        );
        let c = LocalComponent::build(&g, &oracle, &[2, 5, 7], 1);
        assert_eq!(c.len(), 3);
        assert_eq!(c.local_to_global, vec![2, 5, 7]);
        // Local: 0=g2, 1=g5, 2=g7. Edges 0-1, 1-2.
        assert!(c.has_edge(0, 1));
        assert!(c.has_edge(1, 2));
        assert!(!c.has_edge(0, 2));
        // Distances: g2-g5 = 1 (similar), g5-g7 = 8 (dissimilar), g2-g7 = 9.
        assert!(c.are_dissimilar(1, 2));
        assert!(c.are_dissimilar(0, 2));
        assert!(!c.are_dissimilar(0, 1));
        assert_eq!(c.num_dissimilar_pairs, 2);
        assert_eq!(c.num_edges(), 2);
        assert_eq!(c.max_degree(), 2);
    }

    #[test]
    fn globalize_sorts() {
        let g = Graph::from_edges(6, &[(1, 3), (3, 5)]);
        let oracle = TableOracle::new(
            AttributeTable::points(vec![(0.0, 0.0); 6]),
            Metric::Euclidean,
            Threshold::MaxDistance(1.0),
        );
        let c = LocalComponent::build(&g, &oracle, &[1, 3, 5], 1);
        assert_eq!(c.globalize(&[2, 0]), vec![1, 5]);
    }

    #[test]
    fn from_parts_computes_pairs() {
        let c = LocalComponent::from_parts(
            vec![vec![1], vec![0, 2], vec![1]],
            vec![vec![2], vec![], vec![0]],
            1,
        );
        assert_eq!(c.num_dissimilar_pairs, 1);
        assert!(c.are_dissimilar(0, 2));
        assert!(!c.are_dissimilar(0, 1));
    }
}
