//! Problem instance and preprocessing.
//!
//! Algorithm 1's initial stage: remove dissimilar edges, compute the
//! k-core, split into connected components. Each surviving component is
//! turned into a [`crate::component::LocalComponent`] — the arena all
//! search algorithms run in.

use crate::component::LocalComponent;
use kr_graph::components::connected_components_of_subset;
use kr_graph::{k_core, Graph, VertexId};
use kr_similarity::{AttributeTable, DissimMode, Metric, SimilarityOracle, TableOracle, Threshold};

/// An attributed-graph problem instance: graph, similarity oracle, and the
/// `(k, r)` parameters.
#[derive(Debug, Clone)]
pub struct ProblemInstance {
    graph: Graph,
    oracle: TableOracle,
    k: u32,
    dissim_mode: DissimMode,
}

impl ProblemInstance {
    /// Builds an instance. `threshold` carries `r`; `k` is the degree
    /// threshold.
    ///
    /// # Panics
    /// Panics if the attribute table does not cover all vertices, or the
    /// metric/threshold directions disagree (see
    /// [`TableOracle::new`]).
    pub fn new(
        graph: Graph,
        attrs: AttributeTable,
        metric: Metric,
        threshold: Threshold,
        k: u32,
    ) -> Self {
        assert_eq!(
            attrs.len(),
            graph.num_vertices(),
            "attribute table must cover every vertex"
        );
        ProblemInstance {
            graph,
            oracle: TableOracle::new(attrs, metric, threshold),
            k,
            dissim_mode: DissimMode::Auto,
        }
    }

    /// Builds an instance directly from an oracle.
    pub fn from_oracle(graph: Graph, oracle: TableOracle, k: u32) -> Self {
        assert_eq!(oracle.attributes().len(), graph.num_vertices());
        ProblemInstance {
            graph,
            oracle,
            k,
            dissim_mode: DissimMode::Auto,
        }
    }

    /// Overrides how component dissimilarity is represented
    /// ([`DissimMode::Auto`] by default: large dissimilarity-heavy
    /// components go lazy, everything else stays eager).
    pub fn with_dissim_mode(mut self, mode: DissimMode) -> Self {
        self.dissim_mode = mode;
        self
    }

    /// The dissimilarity representation policy used by preprocessing.
    pub fn dissim_mode(&self) -> DissimMode {
        self.dissim_mode
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The similarity oracle.
    pub fn oracle(&self) -> &TableOracle {
        &self.oracle
    }

    /// Degree threshold `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Similarity threshold `r` (raw value).
    pub fn r(&self) -> f64 {
        self.oracle.threshold().value()
    }

    /// Returns a copy of the instance with different `(k, r)` — cheap way
    /// to drive parameter sweeps off one dataset.
    pub fn with_params(&self, k: u32, threshold: Threshold) -> Self {
        ProblemInstance {
            graph: self.graph.clone(),
            oracle: self.oracle.with_threshold(threshold),
            k,
            dissim_mode: self.dissim_mode,
        }
    }

    /// Algorithm 1 lines 1–4: drop dissimilar edges, peel to the k-core,
    /// split into connected components, and materialize each component's
    /// local adjacency + dissimilarity lists.
    ///
    /// Components are returned largest-first except that the component
    /// containing the globally highest-degree vertex comes first, matching
    /// the paper's "start from the subgraph holding the highest-degree
    /// vertex" strategy for the maximum search.
    pub fn preprocess(&self) -> Vec<LocalComponent> {
        self.preprocess_impl(None, None)
    }

    /// [`Self::preprocess`] restricted to a candidate vertex set (usually
    /// resolved from a [`crate::decomp::DecompositionIndex`]): the
    /// similarity oracle is evaluated only on candidate-internal edges,
    /// so the cost of step 1 scales with the candidates' edge count
    /// instead of the whole graph's.
    ///
    /// When `candidates` is a superset of the filtered graph's k-core —
    /// which any sound index lookup guarantees — the returned components
    /// are **identical** to [`Self::preprocess`]'s, in the same order:
    /// vertices outside the k-core never influence the component split,
    /// the arenas, or the seed-component ordering.
    pub fn preprocess_with_candidates(&self, candidates: &[VertexId]) -> Vec<LocalComponent> {
        self.preprocess_impl(None, Some(candidates))
    }

    /// [`Self::preprocess_with_candidates`] on a caller-provided pool
    /// (the parallel analogue of [`Self::preprocess_on`]).
    pub fn preprocess_with_candidates_on(
        &self,
        candidates: &[VertexId],
        pool: &rayon::ThreadPool,
    ) -> Vec<LocalComponent> {
        self.preprocess_impl(Some(pool), Some(candidates))
    }

    /// [`Self::preprocess`] on `threads` workers (`0` = all cores): the
    /// k-core peel runs level-synchronously in parallel and the per-group
    /// arenas are materialized concurrently (with a single group, its
    /// candidate-pair verification is shard-split across the pool
    /// instead). The returned components are identical to the sequential
    /// ones, in the same order.
    pub fn preprocess_parallel(&self, threads: usize) -> Vec<LocalComponent> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        self.preprocess_on(&pool)
    }

    /// [`Self::preprocess_parallel`] on a caller-provided pool. The
    /// parallel engine threads one pool through the whole query — peel,
    /// arena build, and the subtask phase — instead of building a
    /// short-lived pool per phase.
    pub fn preprocess_on(&self, pool: &rayon::ThreadPool) -> Vec<LocalComponent> {
        self.preprocess_impl(Some(pool), None)
    }

    fn preprocess_impl(
        &self,
        pool: Option<&rayon::ThreadPool>,
        candidates: Option<&[VertexId]>,
    ) -> Vec<LocalComponent> {
        // 1. Remove edges between dissimilar endpoints — only evaluating
        //    the oracle inside the candidate set, when one is given. The
        //    filtered graph keeps the global vertex numbering either way,
        //    so every step below is oblivious to how it was produced.
        let filtered = match candidates {
            None => self.graph.filter_edges(|u, v| self.oracle.is_similar(u, v)),
            Some(c) => self
                .graph
                .filter_edges_within(c, |u, v| self.oracle.is_similar(u, v)),
        };
        // 2. k-core of the filtered graph.
        let core_vertices = match pool {
            None => k_core(&filtered, self.k),
            Some(pool) => kr_graph::k_core_on(&filtered, self.k, pool),
        };
        if core_vertices.is_empty() {
            return Vec::new();
        }
        // 3. Connected components of the k-core.
        let labels = connected_components_of_subset(&filtered, &core_vertices);
        let groups = labels.groups();
        // 4. Local components (skips any group smaller than k + 1, which
        //    cannot host a (k,r)-core).
        let groups: Vec<Vec<VertexId>> = groups
            .into_iter()
            .filter(|g| g.len() > self.k as usize)
            .collect();
        let mut comps: Vec<LocalComponent> = match pool {
            Some(pool) if pool.current_num_threads() > 1 && groups.len() > 1 => {
                // Build each arena concurrently; outputs come back in
                // group order so the result matches the sequential path
                // exactly.
                crate::parallel::ordered_pool_map(pool, &groups, |group| {
                    LocalComponent::build(&filtered, &self.oracle, group, self.k, self.dissim_mode)
                })
            }
            Some(pool) if pool.current_num_threads() > 1 => {
                // A single (often giant) component: parallelism comes
                // from shard-splitting its candidate-pair verification
                // across the same pool instead.
                groups
                    .into_iter()
                    .map(|g| {
                        LocalComponent::build_on(
                            &filtered,
                            &self.oracle,
                            &g,
                            self.k,
                            self.dissim_mode,
                            pool,
                        )
                    })
                    .collect()
            }
            _ => groups
                .into_iter()
                .map(|g| {
                    LocalComponent::build(&filtered, &self.oracle, &g, self.k, self.dissim_mode)
                })
                .collect(),
        };
        // Put the component with the highest-degree vertex first; order the
        // rest by size descending.
        let best_seed = comps
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c.max_degree())
            .map(|(i, _)| i);
        if let Some(i) = best_seed {
            comps.swap(0, i);
            comps[1..].sort_by_key(|c| std::cmp::Reverse(c.len()));
        }
        comps
    }

    /// Convenience wrapper exposing the preprocessed k-core vertex set in
    /// global ids (used by tests and the clique baseline).
    pub fn preprocessed_core(&self) -> Vec<VertexId> {
        let filtered = self.graph.filter_edges(|u, v| self.oracle.is_similar(u, v));
        k_core(&filtered, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two geo-clusters of 4 vertices each, connected by one bridge edge;
    /// inside a cluster everyone is adjacent and similar.
    fn two_cluster_instance(k: u32, r: f64) -> ProblemInstance {
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 4)); // bridge (will survive only if similar)
        let graph = Graph::from_edges(8, &edges);
        let pts = (0..8)
            .map(|i| if i < 4 { (0.0, 0.0) } else { (100.0, 0.0) })
            .collect();
        ProblemInstance::new(
            graph,
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(r),
            k,
        )
    }

    #[test]
    fn preprocess_splits_dissimilar_bridge() {
        let p = two_cluster_instance(2, 10.0);
        let comps = p.preprocess();
        // Bridge 0-4 spans 100km > 10km, so it is removed; two 4-cliques.
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 4);
        assert_eq!(comps[1].len(), 4);
    }

    #[test]
    fn preprocess_keeps_similar_bridge() {
        let p = two_cluster_instance(2, 200.0);
        let comps = p.preprocess();
        // Everything within 200km: a single 8-vertex component.
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 8);
    }

    #[test]
    fn preprocess_empty_when_k_too_large() {
        let p = two_cluster_instance(5, 10.0);
        assert!(p.preprocess().is_empty());
    }

    #[test]
    fn with_params_changes_k_and_r() {
        let p = two_cluster_instance(2, 10.0);
        let p2 = p.with_params(3, Threshold::MaxDistance(500.0));
        assert_eq!(p2.k(), 3);
        assert_eq!(p2.r(), 500.0);
        assert_eq!(p2.preprocess().len(), 1);
    }

    #[test]
    fn small_groups_skipped() {
        // Triangle with k = 2 passes (3 > 2 fails: 3 > 2 means len > k i.e.
        // 3 > 2 true) — a triangle is a valid 2-core of size 3.
        let graph = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let p = ProblemInstance::new(
            graph,
            AttributeTable::points(vec![(0.0, 0.0); 3]),
            Metric::Euclidean,
            Threshold::MaxDistance(1.0),
            2,
        );
        let comps = p.preprocess();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 3);
    }

    #[test]
    fn candidate_restricted_preprocess_is_identical() {
        for r in [10.0, 200.0] {
            let p = two_cluster_instance(2, r);
            let full = p.preprocess();
            // Both the tightest sound candidate set (the preprocessed
            // k-core itself) and a loose superset (every vertex) must
            // reproduce the unrestricted result exactly.
            for cand in [p.preprocessed_core(), (0..8).collect::<Vec<_>>()] {
                let restricted = p.preprocess_with_candidates(&cand);
                assert_eq!(restricted.len(), full.len(), "r={r}");
                for (a, b) in full.iter().zip(&restricted) {
                    let ids: Vec<VertexId> = (0..a.len() as VertexId).collect();
                    assert_eq!(a.globalize(&ids), b.globalize(&ids), "r={r}");
                    assert_eq!(a.num_edges(), b.num_edges(), "r={r}");
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn attribute_coverage_enforced() {
        let graph = Graph::from_edges(3, &[(0, 1)]);
        ProblemInstance::new(
            graph,
            AttributeTable::points(vec![(0.0, 0.0)]),
            Metric::Euclidean,
            Threshold::MaxDistance(1.0),
            1,
        );
    }
}
