//! Algorithm configuration.
//!
//! Every pruning technique, upper bound, and search order from the paper is
//! an independent toggle so that the evaluation's ablations (BasicEnum,
//! BE+CR, BE+CR+ET, AdvEnum, AdvEnum-O, AdvEnum-P, BasicMax, AdvMax-O,
//! AdvMax-UB, ...) are just configurations of one engine.

use crate::result::KrCore;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Streaming callback invoked once per *confirmed-maximal* core as the
/// enumeration discovers it — the hook a serving layer uses to push
/// incremental result frames instead of buffering the full family.
///
/// The engine only invokes the hook when [`AlgoConfig::maximal_check`] is
/// on: under Theorem 6 every core pushed into the sink is already final,
/// so streaming it early cannot emit a core the finished run would have
/// filtered out. Configurations relying on the naive subset post-filter
/// (NaiveEnum, BasicEnum) ignore the hook — their cores are only known
/// maximal after the run, and callers read them from
/// [`crate::EnumResult::cores`] as before. Parallel runs invoke the hook
/// from the deterministic merge phase, after cross-task deduplication, so
/// a core is streamed exactly once there too.
#[derive(Clone)]
pub struct CoreHook(Arc<dyn Fn(&KrCore) + Send + Sync>);

impl CoreHook {
    /// Wraps a callback.
    pub fn new(f: impl Fn(&KrCore) + Send + Sync + 'static) -> Self {
        CoreHook(Arc::new(f))
    }

    /// Invokes the callback on one confirmed-maximal core.
    pub fn emit(&self, core: &KrCore) {
        (self.0)(core)
    }
}

impl std::fmt::Debug for CoreHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CoreHook(..)")
    }
}

/// Hooks compare by identity: two configs are equal only when they share
/// the same callback instance (or both have none).
impl PartialEq for CoreHook {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Cooperative cancellation token checked at every search node, next to
/// the node/time budgets. A caller that learns mid-search that the result
/// is no longer wanted (the serving layer's client hung up, a speculative
/// run lost a race) cancels the flag and the engine winds down at the next
/// node, reporting `completed = false` exactly like an exhausted budget.
///
/// The flag is shared: clones observe the same state, so the same token
/// reaches every task driver of a parallel run through the config. Checks
/// are `Relaxed` loads — cancellation needs no ordering with other memory,
/// only eventual visibility, and a relaxed load keeps the per-node cost
/// negligible.
#[derive(Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelFlag::default()
    }

    /// Requests cancellation; every engine sharing this token aborts at
    /// its next search node. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelFlag::cancel`] was called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for CancelFlag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CancelFlag({})", self.is_cancelled())
    }
}

/// Tokens compare by identity, like [`CoreHook`]: two configs are equal
/// only when they share the same flag instance (or both have none).
impl PartialEq for CancelFlag {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Vertex visiting order (Section 7.1's measurements).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SearchOrder {
    /// Seeded pseudo-random choice (ablation baseline).
    Random,
    /// Highest degree in `M ∪ C` first (used by CheckMaximal, Section 7.4).
    Degree,
    /// Largest Δ1 (dissimilar-pair reduction) only.
    Delta1,
    /// Smallest Δ2 (edge reduction) only.
    Delta2,
    /// Largest Δ1, ties broken by smallest Δ2 (AdvEnum, Section 7.3).
    Delta1ThenDelta2,
    /// Largest `λ·Δ1 − Δ2` (AdvMax, Section 7.2). λ lives in
    /// [`AlgoConfig::lambda`].
    LambdaDelta,
}

/// Branch exploration policy for the maximum search (Algorithm 5 lines
/// 7–12). Enumeration explores both branches regardless, so the policy only
/// affects which (k,r)-cores are found *first*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BranchPolicy {
    /// Always expand first (ablation in Figure 11(b)).
    AlwaysExpand,
    /// Always shrink first (ablation in Figure 11(b)).
    AlwaysShrink,
    /// Explore the branch with the higher order score first (AdvMax).
    Adaptive,
}

/// Candidate order inside the maximal-check sub-search (Algorithm 4 /
/// Figure 11(f)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckOrder {
    /// Highest degree first, expand-first (the paper's choice).
    Degree,
    /// Enumeration-style Δ1-then-Δ2 analog.
    Delta1ThenDelta2,
    /// Maximum-style λΔ1 − Δ2 analog.
    LambdaDelta,
}

/// Re-splitting policy for the work-stealing engine
/// ([`crate::parallel`]). The initial top-`d` frontier split can starve
/// workers on skewed search trees: one giant subtree keeps a single
/// worker busy while the rest idle. Re-splitting lets a *running*
/// subtask donate the remaining (not yet explored) sibling branches of
/// its current DFS path as fresh subtasks when the pool runs dry.
/// Results stay vertex-set-identical to the sequential engine under
/// every policy — donated subtrees keep their DFS merge position and
/// their start incumbent is DFS-prefix knowledge only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Resplit {
    /// Never re-split (the pre-resplit engine: initial frontier only).
    Off,
    /// Donate only when the pool is starving (fewer live subtasks than
    /// workers). The default.
    #[default]
    Adaptive,
    /// Donate one pending sibling at every search node regardless of
    /// pool load. For tests: makes `SearchStats::resplits` deterministic
    /// on instances deep enough to have pending siblings.
    Forced,
}

/// Size upper bound used by the maximum algorithm (Section 6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundKind {
    /// `|M| + |C|` (BasicMax).
    Naive,
    /// Greedy-coloring bound on the similarity graph.
    Color,
    /// k-core bound on the similarity graph (`kmax + 1`).
    KCore,
    /// `min(Color, KCore)` — the state of the art the paper compares with.
    ColorKCore,
    /// The paper's novel (k,k')-core bound (Algorithm 6, Theorem 7).
    DoubleKCore,
}

/// Full algorithm configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgoConfig {
    /// Theorem 2 + Theorem 3 candidate pruning. Off only in NaiveEnum.
    pub prune_candidates: bool,
    /// Theorem 4 candidate retention (skip similarity-free vertices; close
    /// the node when `C = SF(C)`).
    pub retain_candidates: bool,
    /// Theorem 5 early termination on the excluded set E.
    pub early_termination: bool,
    /// Theorem 6 maximal check via E (Algorithm 4). When off, enumeration
    /// falls back to the naive pairwise post-filter of Algorithm 1.
    pub maximal_check: bool,
    /// Vertex visiting order.
    pub order: SearchOrder,
    /// Candidate order for the maximal-check sub-search.
    pub check_order: CheckOrder,
    /// Branch policy (maximum search only).
    pub branch: BranchPolicy,
    /// Upper bound for maximum-search pruning.
    pub bound: BoundKind,
    /// λ of the `λ·Δ1 − Δ2` order (the paper tunes λ = 5).
    pub lambda: f64,
    /// Seed for [`SearchOrder::Random`].
    pub seed: u64,
    /// Safety valve: abort the search after this many search nodes
    /// (`None` = unlimited). The harness uses it to emulate the paper's
    /// one-hour INF cutoff.
    pub node_limit: Option<u64>,
    /// Wall-clock budget in milliseconds (`None` = unlimited). Checked at
    /// every search node; the run reports `completed = false` when
    /// exceeded — the harness renders that as the paper's INF.
    pub time_limit_ms: Option<u64>,
    /// Process components in parallel with scoped threads (one thread per
    /// component; coarse-grained). Superseded by [`Self::threads`], which
    /// also splits *within* components; kept for the ablation harness.
    pub parallel_components: bool,
    /// Worker threads for the work-stealing engine ([`crate::parallel`]).
    /// `1` = run the sequential engine (default); `0` = use all available
    /// cores; `n > 1` = exactly `n` workers. Parallel runs produce results
    /// identical to the sequential engine (see the module docs of
    /// [`crate::parallel`] for why that holds even for the maximum
    /// search's tie-breaking).
    pub threads: usize,
    /// Adaptive re-splitting policy for parallel runs (ignored by the
    /// sequential engine). See [`Resplit`].
    pub resplit: Resplit,
    /// Streaming callback for enumeration: called once per confirmed
    /// maximal core as it is discovered (see [`CoreHook`] for when the
    /// engine honors it). `None` (default) buffers results as usual.
    pub on_core: Option<CoreHook>,
    /// Cooperative cancellation token, checked at every search node next
    /// to the node/time budgets (see [`CancelFlag`]). `None` (default) =
    /// not cancellable.
    pub cancel: Option<CancelFlag>,
}

impl Default for AlgoConfig {
    fn default() -> Self {
        AlgoConfig::adv_enum()
    }
}

impl AlgoConfig {
    /// NaiveEnum: Algorithm 1 + 2, no pruning beyond the initial k-core,
    /// naive maximal post-filter. Exponential — toy graphs only.
    pub fn naive_enum() -> Self {
        AlgoConfig {
            prune_candidates: false,
            retain_candidates: false,
            early_termination: false,
            maximal_check: false,
            order: SearchOrder::Degree,
            check_order: CheckOrder::Degree,
            branch: BranchPolicy::AlwaysExpand,
            bound: BoundKind::Naive,
            lambda: 5.0,
            seed: 0,
            node_limit: None,
            time_limit_ms: None,
            parallel_components: false,
            threads: 1,
            resplit: Resplit::default(),
            on_core: None,
            cancel: None,
        }
    }

    /// BasicEnum: structure + similarity pruning (Thms 2–3) and the best
    /// enumeration order, but no retention / early termination / maximal
    /// check (naive post-filter instead).
    pub fn basic_enum() -> Self {
        AlgoConfig {
            prune_candidates: true,
            order: SearchOrder::Delta1ThenDelta2,
            ..AlgoConfig::naive_enum()
        }
    }

    /// BE+CR of Figure 9: BasicEnum + candidate retention (Theorem 4).
    pub fn be_cr() -> Self {
        AlgoConfig {
            retain_candidates: true,
            ..AlgoConfig::basic_enum()
        }
    }

    /// BE+CR+ET of Figure 9: adds early termination (Theorem 5).
    pub fn be_cr_et() -> Self {
        AlgoConfig {
            early_termination: true,
            ..AlgoConfig::be_cr()
        }
    }

    /// AdvEnum: all enumeration techniques + Δ1-then-Δ2 order.
    pub fn adv_enum() -> Self {
        AlgoConfig {
            maximal_check: true,
            ..AlgoConfig::be_cr_et()
        }
    }

    /// AdvEnum-O of Figure 12: all advanced techniques but degree order.
    pub fn adv_enum_no_order() -> Self {
        AlgoConfig {
            order: SearchOrder::Degree,
            ..AlgoConfig::adv_enum()
        }
    }

    /// AdvEnum-P of Figure 12: best order but no advanced pruning
    /// (candidate retention / early termination / maximal check off).
    pub fn adv_enum_no_pruning() -> Self {
        AlgoConfig::basic_enum()
    }

    /// BasicMax: maximum search with the naive `|M|+|C|` bound and the best
    /// order.
    pub fn basic_max() -> Self {
        AlgoConfig {
            prune_candidates: true,
            retain_candidates: true,
            early_termination: true,
            maximal_check: false,
            order: SearchOrder::LambdaDelta,
            check_order: CheckOrder::Degree,
            branch: BranchPolicy::Adaptive,
            bound: BoundKind::Naive,
            lambda: 5.0,
            seed: 0,
            node_limit: None,
            time_limit_ms: None,
            parallel_components: false,
            threads: 1,
            resplit: Resplit::default(),
            on_core: None,
            cancel: None,
        }
    }

    /// AdvMax: maximum search with the (k,k')-core bound.
    pub fn adv_max() -> Self {
        AlgoConfig {
            bound: BoundKind::DoubleKCore,
            ..AlgoConfig::basic_max()
        }
    }

    /// AdvMax-O of Figure 12: (k,k')-core bound but degree order.
    pub fn adv_max_no_order() -> Self {
        AlgoConfig {
            order: SearchOrder::Degree,
            branch: BranchPolicy::AlwaysExpand,
            ..AlgoConfig::adv_max()
        }
    }

    /// AdvMax-UB of Figure 12: best order but naive bound (alias of
    /// BasicMax).
    pub fn adv_max_no_bound() -> Self {
        AlgoConfig::basic_max()
    }

    /// AdvEnum on the work-stealing parallel engine, using all available
    /// cores (tune with [`Self::with_threads`]). Output is identical to
    /// [`AlgoConfig::adv_enum`].
    pub fn adv_enum_parallel() -> Self {
        AlgoConfig {
            threads: 0,
            ..AlgoConfig::adv_enum()
        }
    }

    /// AdvMax on the work-stealing parallel engine, using all available
    /// cores (tune with [`Self::with_threads`]). The shared incumbent
    /// bound is propagated across workers through an atomic; the returned
    /// core is identical to [`AlgoConfig::adv_max`]'s.
    pub fn adv_max_parallel() -> Self {
        AlgoConfig {
            threads: 0,
            ..AlgoConfig::adv_max()
        }
    }

    /// Builder-style override of the search order.
    pub fn with_order(mut self, order: SearchOrder) -> Self {
        self.order = order;
        self
    }

    /// Builder-style override of the branch policy.
    pub fn with_branch(mut self, branch: BranchPolicy) -> Self {
        self.branch = branch;
        self
    }

    /// Builder-style override of the bound.
    pub fn with_bound(mut self, bound: BoundKind) -> Self {
        self.bound = bound;
        self
    }

    /// Builder-style override of λ.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Builder-style override of the node limit.
    pub fn with_node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Builder-style override of the wall-clock budget (milliseconds).
    pub fn with_time_limit_ms(mut self, ms: u64) -> Self {
        self.time_limit_ms = Some(ms);
        self
    }

    /// Builder-style override of the maximal-check order.
    pub fn with_check_order(mut self, order: CheckOrder) -> Self {
        self.check_order = order;
        self
    }

    /// Builder-style override of the worker-thread count (`0` = all
    /// available cores, `1` = sequential engine).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style override of the streaming callback.
    pub fn with_on_core(mut self, hook: CoreHook) -> Self {
        self.on_core = Some(hook);
        self
    }

    /// Builder-style override of the cancellation token.
    pub fn with_cancel(mut self, flag: CancelFlag) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Builder-style override of the re-splitting policy.
    pub fn with_resplit(mut self, resplit: Resplit) -> Self {
        self.resplit = resplit;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_ladder_is_monotone() {
        let naive = AlgoConfig::naive_enum();
        assert!(!naive.prune_candidates && !naive.retain_candidates);
        let basic = AlgoConfig::basic_enum();
        assert!(basic.prune_candidates && !basic.retain_candidates);
        let cr = AlgoConfig::be_cr();
        assert!(cr.retain_candidates && !cr.early_termination);
        let et = AlgoConfig::be_cr_et();
        assert!(et.early_termination && !et.maximal_check);
        let adv = AlgoConfig::adv_enum();
        assert!(adv.maximal_check);
    }

    #[test]
    fn max_configs() {
        assert_eq!(AlgoConfig::basic_max().bound, BoundKind::Naive);
        assert_eq!(AlgoConfig::adv_max().bound, BoundKind::DoubleKCore);
        assert_eq!(AlgoConfig::adv_max().order, SearchOrder::LambdaDelta);
        assert_eq!(AlgoConfig::adv_max_no_order().order, SearchOrder::Degree);
    }

    #[test]
    fn parallel_configs() {
        let e = AlgoConfig::adv_enum_parallel();
        assert_eq!(e.threads, 0);
        assert_eq!(AlgoConfig::adv_enum(), AlgoConfig { threads: 1, ..e });
        let m = AlgoConfig::adv_max_parallel();
        assert_eq!(m.threads, 0);
        assert_eq!(AlgoConfig::adv_max(), AlgoConfig { threads: 1, ..m });
        assert_eq!(AlgoConfig::adv_max_parallel().with_threads(4).threads, 4);
    }

    #[test]
    fn builders_override() {
        let c = AlgoConfig::adv_max()
            .with_lambda(2.0)
            .with_order(SearchOrder::Degree)
            .with_bound(BoundKind::Color)
            .with_branch(BranchPolicy::AlwaysShrink)
            .with_node_limit(10);
        assert_eq!(c.lambda, 2.0);
        assert_eq!(c.order, SearchOrder::Degree);
        assert_eq!(c.bound, BoundKind::Color);
        assert_eq!(c.branch, BranchPolicy::AlwaysShrink);
        assert_eq!(c.node_limit, Some(10));
    }
}
