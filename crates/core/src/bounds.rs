//! Size upper bounds for the maximum (k,r)-core (Section 6.2).
//!
//! Every bound is evaluated on the current `M ∪ C` of a search node. Let
//! `J` be the induced structure graph and `J'` the induced similarity
//! graph; any (k,r)-core inside `M ∪ C` is a clique of `J'` whose vertices
//! have degree ≥ k in `J`:
//!
//! * **Naive** — `|M| + |C|` (what BasicMax uses);
//! * **Color** — a proper coloring of `J'` with `c` colors bounds its
//!   clique number by `c`;
//! * **KCore** — a clique of size `s` is an `(s−1)`-core of `J'`, so
//!   `kmax(J') + 1` is a bound;
//! * **DoubleKCore** — the paper's novel (k,k')-core bound (Algorithm 6,
//!   Theorem 7): the largest `k'` such that some vertex subset is
//!   simultaneously a k-core of `J` and a k'-core of `J'`; the bound is
//!   `k'max + 1`. Always at least as tight as KCore.
//!
//! `J'` is dense (its complement — the dissimilarity lists — is what we
//! store), so all computations run over the complement: for a vertex `v`
//! of an active set of size `n`, `degsim(v) = n − 1 − |dis(v) ∩ active|`.

use crate::component::LocalComponent;
use crate::config::BoundKind;
use crate::search::{SearchState, Status};
use kr_graph::VertexId;

/// Visits the dissimilar partners of `v` without materializing: a tight
/// slice loop when the row is resident (always on eager components,
/// memoized rows on lazy ones), a streamed complement walk otherwise.
/// The slice path matters: these loops run on every search node, and
/// routing the eager case through the streamed visitor costs ~40% of
/// enumeration wall time on the bench presets.
#[inline(always)]
fn visit_dissimilar(comp: &LocalComponent, v: VertexId, mut f: impl FnMut(VertexId)) {
    if let Some(row) = comp.dissimilar_resident(v) {
        for &w in row {
            f(w);
        }
    } else {
        comp.for_each_dissimilar(v, f);
    }
}

/// Evaluates `bound` on the current `M ∪ C` of `st`.
pub fn size_upper_bound(st: &SearchState<'_>, bound: BoundKind) -> u32 {
    match bound {
        BoundKind::Naive => st.mc_len(),
        BoundKind::Color => color_bound(st),
        BoundKind::KCore => sim_kcore_bound(st),
        BoundKind::ColorKCore => color_bound(st).min(sim_kcore_bound(st)),
        BoundKind::DoubleKCore => double_kcore_bound(st),
    }
}

/// Collects the active (`M ∪ C`) vertices.
fn active_vertices(st: &SearchState<'_>) -> Vec<VertexId> {
    (0..st.comp.len() as VertexId)
        .filter(|&v| matches!(st.status(v), Status::Chosen | Status::Cand))
        .collect()
}

/// `degsim` within the active set for every active vertex.
///
/// Thanks to the similarity invariant (Eq. 1) every dissimilar pair inside
/// `M ∪ C` has both endpoints in `C`, so `degsim(v) = n − 1 − dp_c(v)`;
/// we still recompute from the lists for robustness when invariants are
/// not maintained (naive configurations).
fn sim_degrees(st: &SearchState<'_>, active: &[VertexId], in_active: &[bool]) -> Vec<u32> {
    let n = active.len() as u32;
    active
        .iter()
        .map(|&v| {
            let mut d = 0u32;
            visit_dissimilar(st.comp, v, |w| {
                if in_active[w as usize] {
                    d += 1;
                }
            });
            n - 1 - d
        })
        .collect()
}

/// Greedy coloring bound on `J'`, iterating vertices by decreasing
/// similarity degree. Runs on the complement: vertex `v` may reuse color
/// class `c` iff *every* member of `c` is dissimilar to `v`.
pub fn color_bound(st: &SearchState<'_>) -> u32 {
    let active = active_vertices(st);
    let n = active.len();
    if n == 0 {
        return 0;
    }
    let mut in_active = vec![false; st.comp.len()];
    for &v in &active {
        in_active[v as usize] = true;
    }
    let degsim = sim_degrees(st, &active, &in_active);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| std::cmp::Reverse(degsim[i]));

    // color_of[global vertex] = assigned color + 1 (0 = uncolored).
    let mut color_of = vec![0u32; st.comp.len()];
    let mut class_size: Vec<u32> = Vec::new();
    // Scratch: per color, how many of v's dissimilar partners carry it.
    let mut dis_count: Vec<u32> = Vec::new();
    for &i in &order {
        let v = active[i];
        dis_count.clear();
        dis_count.resize(class_size.len(), 0);
        visit_dissimilar(st.comp, v, |w| {
            let cw = color_of[w as usize];
            if cw > 0 && in_active[w as usize] {
                dis_count[(cw - 1) as usize] += 1;
            }
        });
        let mut chosen = None;
        for c in 0..class_size.len() {
            if dis_count[c] == class_size[c] {
                chosen = Some(c);
                break;
            }
        }
        let c = chosen.unwrap_or_else(|| {
            class_size.push(0);
            class_size.len() - 1
        });
        class_size[c] += 1;
        color_of[v as usize] = c as u32 + 1;
    }
    class_size.len() as u32
}

/// k-core bound on `J'`: `kmax + 1` where `kmax` is the largest core
/// number of the similarity graph over the active set.
pub fn sim_kcore_bound(st: &SearchState<'_>) -> u32 {
    peel_bound(st, false)
}

/// The (k,k')-core bound of Algorithm 6 / Theorem 7.
pub fn double_kcore_bound(st: &SearchState<'_>) -> u32 {
    peel_bound(st, true)
}

/// Shared peeling kernel. With `enforce_structure` it is Algorithm 6
/// (similarity-degree peeling + structural k-core maintenance on `J`);
/// without, it is plain core decomposition of `J'`.
fn peel_bound(st: &SearchState<'_>, enforce_structure: bool) -> u32 {
    let active = active_vertices(st);
    let n = active.len();
    if n == 0 {
        return 0;
    }
    let mut in_active = vec![false; st.comp.len()];
    let mut local = vec![u32::MAX; st.comp.len()];
    for (i, &v) in active.iter().enumerate() {
        in_active[v as usize] = true;
        local[v as usize] = i as u32;
    }
    let mut degsim: Vec<u32> = sim_degrees(st, &active, &in_active);
    let mut deg: Vec<u32> = active
        .iter()
        .map(|&v| {
            st.comp
                .neighbors(v)
                .iter()
                .filter(|&&w| in_active[w as usize])
                .count() as u32
        })
        .collect();

    // Bucket queue over degsim with lazy deletion.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..n {
        buckets[degsim[i] as usize].push(i as u32);
    }
    let mut alive = vec![true; n];
    let mut alive_count = n as u32;
    let mut kprime = 0u32;
    let mut cur = 0usize;
    // Stack of structurally-dead vertices to remove at the current k'.
    let mut dead_stack: Vec<u32> = Vec::new();

    // Marks dis-partners of the vertex being removed (to skip them when
    // decrementing similarity degrees of "similar" survivors).
    let mut dis_mark = vec![false; n];

    // Vertices below the structural threshold up front can join no
    // (k,k')-core at all; peel them at k' = 0 before the main loop. (The
    // search always passes a k-core, but callers on raw components may
    // not.)
    if enforce_structure {
        for (i, &d) in deg.iter().enumerate() {
            if d < st.k {
                dead_stack.push(i as u32);
            }
        }
    }
    let mut any_processed = false;

    loop {
        // Drain structurally-dead vertices at the current k'.
        while let Some(x) = dead_stack.pop() {
            let xi = x as usize;
            if !alive[xi] {
                continue;
            }
            alive[xi] = false;
            alive_count -= 1;
            let gx = active[xi];
            // Mark x's dissimilar partners.
            visit_dissimilar(st.comp, gx, |w| {
                let lw = local[w as usize];
                if lw != u32::MAX {
                    dis_mark[lw as usize] = true;
                }
            });
            // Similar survivors lose a similarity degree (standard core
            // decomposition: only those above the current k').
            for i in 0..n {
                if alive[i] && !dis_mark[i] && degsim[i] > kprime {
                    degsim[i] -= 1;
                    buckets[degsim[i] as usize].push(i as u32);
                    if (degsim[i] as usize) < cur {
                        cur = degsim[i] as usize;
                    }
                }
            }
            visit_dissimilar(st.comp, gx, |w| {
                let lw = local[w as usize];
                if lw != u32::MAX {
                    dis_mark[lw as usize] = false;
                }
            });
            // Structural side (Algorithm 6's KK'coreUpdate): neighbors in J
            // lose a degree; below k they die at the same k'.
            if enforce_structure {
                for &w in st.comp.neighbors(gx) {
                    let lw = local[w as usize];
                    if lw != u32::MAX && alive[lw as usize] {
                        deg[lw as usize] -= 1;
                        if deg[lw as usize] < st.k {
                            dead_stack.push(lw);
                        }
                    }
                }
            }
        }
        if alive_count == 0 {
            break;
        }
        // Pick the alive vertex with minimum current degsim.
        let u = loop {
            while cur < n && buckets[cur].is_empty() {
                cur += 1;
            }
            if cur >= n {
                // All remaining entries were stale; fall back to a scan.
                let mut min_i = None;
                for i in 0..n {
                    if alive[i] && min_i.is_none_or(|m: u32| degsim[i] < degsim[m as usize]) {
                        min_i = Some(i as u32);
                    }
                }
                break min_i;
            }
            let i = buckets[cur].pop().expect("non-empty bucket");
            if alive[i as usize] && degsim[i as usize] as usize == cur {
                break Some(i);
            }
        };
        let Some(u) = u else { break };
        kprime = kprime.max(degsim[u as usize]);
        any_processed = true;
        dead_stack.push(u);
    }
    if any_processed {
        kprime + 1
    } else {
        // Everything died in the structural pre-pass: no (k,k')-core at
        // all, hence no (k,r)-core either.
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::SearchState;

    /// Figure 4 of the paper: J is vertices u0..u5; J' differs.
    /// We encode: adjacency of J and the *dissimilarity* lists
    /// (complement of J' edges).
    fn figure4() -> LocalComponent {
        // J (Figure 4a): u0-u1, u0-u2, u0-u3, u0-u4, u0-u5,
        //                u1-u2, u2-u3, u3-u4, u4-u5, u5-u1  (wheel W5)
        let adj = vec![
            vec![1, 2, 3, 4, 5],
            vec![0, 2, 5],
            vec![0, 1, 3],
            vec![0, 2, 4],
            vec![0, 3, 5],
            vec![0, 1, 4],
        ];
        // J' (Figure 4b): complete graph minus edges (1,3) and (2,5)...
        // Chosen so that: color bound = 5, sim-kcore bound = 5 (kmax = 4),
        // and the (3,k')-core bound = 4, matching Example 7 with k = 3.
        let dis = vec![vec![], vec![3], vec![5], vec![1], vec![], vec![2]];
        LocalComponent::from_parts(adj, dis, 3)
    }

    #[test]
    fn naive_bound_is_mc() {
        let comp = figure4();
        let st = SearchState::new(&comp);
        assert_eq!(size_upper_bound(&st, BoundKind::Naive), 6);
    }

    #[test]
    fn example7_bounds() {
        let comp = figure4();
        let st = SearchState::new(&comp);
        // J' = K6 minus a perfect-ish matching {1-3, 2-5}: chromatic
        // number 4?? Let's verify empirically what we claim: the clique
        // number of J' is 4 ({0,1,2,4} etc. avoid both missing edges? 0,1,2,4:
        // pairs (1,3)(2,5) absent -> all present -> yes a 4-clique; adding
        // any of 3 (dissimilar to 1) or 5 (dissimilar to 2) breaks it).
        let color = color_bound(&st);
        let simk = sim_kcore_bound(&st);
        let double = double_kcore_bound(&st);
        // K6 minus 2 disjoint non-edges: min degree of J' is 4 -> kmax = 4
        // -> simk bound 5. Greedy coloring uses 4 colors ({0} alone...).
        assert_eq!(simk, 5);
        assert!((4..=5).contains(&color), "color {color}");
        // Double bound must be tighter or equal, and still >= true max
        // clique-with-structure (= 4: {0,2,3,4} has J-degrees 3,3,3,3? u2
        // adj u0,u3 in set -> degree 2 < 3. The true maximum (3,r)-core
        // here: needs J-degree >= 3 inside the set).
        assert!(double <= simk);
        assert!(double >= 4, "double {double}");
    }

    #[test]
    fn bounds_dominate_true_maximum_on_clique() {
        // J = J' = K5, k = 2: the whole graph is the (2,r)-core of size 5.
        let adj: Vec<Vec<VertexId>> = (0..5)
            .map(|i| (0..5).filter(|&j| j != i).collect())
            .collect();
        let dis = vec![vec![]; 5];
        let comp = LocalComponent::from_parts(adj, dis, 2);
        let st = SearchState::new(&comp);
        for b in [
            BoundKind::Naive,
            BoundKind::Color,
            BoundKind::KCore,
            BoundKind::ColorKCore,
            BoundKind::DoubleKCore,
        ] {
            assert!(size_upper_bound(&st, b) >= 5, "{b:?}");
        }
        // On a clique every bound is exact.
        assert_eq!(size_upper_bound(&st, BoundKind::DoubleKCore), 5);
        assert_eq!(size_upper_bound(&st, BoundKind::Color), 5);
    }

    #[test]
    fn double_no_looser_than_kcore() {
        let comp = figure4();
        let st = SearchState::new(&comp);
        assert!(double_kcore_bound(&st) <= sim_kcore_bound(&st));
    }

    #[test]
    fn empty_state_bounds_zero() {
        let comp = LocalComponent::from_parts(vec![vec![1], vec![0]], vec![vec![], vec![]], 1);
        let mut st = SearchState::new(&comp);
        st.set_status(0, crate::search::Status::Gone);
        st.set_status(1, crate::search::Status::Gone);
        for b in [BoundKind::Color, BoundKind::KCore, BoundKind::DoubleKCore] {
            assert_eq!(size_upper_bound(&st, b), 0, "{b:?}");
        }
    }

    #[test]
    fn structure_enforcement_tightens() {
        // Star + ring (wheel) with k = 3: J' complete (no dissimilar
        // pairs). Sim-kcore bound = 6 (K6 core number 5 -> bound 6).
        // Structural: wheel W5 has hub degree 5, rim degree 3 -> whole
        // graph is a 3-core, so the double bound stays 6.
        let adj = vec![
            vec![1, 2, 3, 4, 5],
            vec![0, 2, 5],
            vec![0, 1, 3],
            vec![0, 2, 4],
            vec![0, 3, 5],
            vec![0, 1, 4],
        ];
        let dis = vec![vec![]; 6];
        let comp = LocalComponent::from_parts(adj.clone(), dis, 3);
        let st = SearchState::new(&comp);
        assert_eq!(sim_kcore_bound(&st), 6);
        assert_eq!(double_kcore_bound(&st), 6);
        // Now with k = 4 the rim dies structurally; only the hub's... the
        // 4-core of the wheel is empty, cascading everything: k' collapses.
        let comp2 = LocalComponent::from_parts(adj, vec![vec![]; 6], 4);
        let st2 = SearchState::new(&comp2);
        let d = double_kcore_bound(&st2);
        assert!(d < 6, "structure constraint should bite: {d}");
    }
}
