//! Shared branch-and-prune search state.
//!
//! The enumeration (Algorithm 3) and maximum (Algorithm 5) searches both
//! walk the binary expand/shrink tree of Figure 2 over a
//! [`LocalComponent`]. This module maintains the node state — the sets
//! `M` (chosen), `C` (candidates), `E` (relevant excluded) of Table 1 —
//! with all the counters the pruning rules need, mutated through a trail of
//! status transitions so backtracking is O(changes).
//!
//! Counters per vertex (all maintained for every vertex regardless of its
//! own status):
//!
//! * `deg_mc[v]` — neighbors of `v` inside `M ∪ C` (structure pruning,
//!   Theorem 2; the degree invariant Eq. 2);
//! * `deg_m[v]`  — neighbors inside `M` (early termination, Theorem 5);
//! * `dp_c[v]`   — dissimilar partners inside `C` (`DP(v, C)`; similarity
//!   free sets of Theorems 4–5);
//! * `dp_e[v]`   — dissimilar partners inside `E` (`SF_{C∪E}(E)` of
//!   Theorem 5(ii)).
//!
//! Invariants after every cascade (checked by `debug_assert_invariants`):
//! Eq. 1 `DP(u, M∪C) = 0` for `u ∈ M`, Eq. 2 `degmin(M∪C) ≥ k` (unless the
//! node failed), and every `E` member similar to all of `M`.

use crate::component::LocalComponent;
use kr_graph::VertexId;

/// One branch decision along a search-tree path: the chosen vertex and
/// whether it was expanded (`true`) or shrunk (`false`). A sequence of
/// decisions from the root identifies a search-tree node; the parallel
/// engine ships these prefixes to workers, which replay them on a fresh
/// [`SearchState`] (see [`crate::parallel`]).
pub type Decision = (VertexId, bool);

/// Where a vertex currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Removed and irrelevant for maximality (dissimilar to some `M`
    /// member).
    Gone,
    /// Candidate set `C`.
    Cand,
    /// Chosen set `M`.
    Chosen,
    /// Relevant excluded set `E` (removed but similar to all of `M`).
    Excluded,
}

/// Search statistics, reported by both algorithms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Search-tree nodes visited.
    pub nodes: u64,
    /// Leaves reached (candidate solutions inspected).
    pub leaves: u64,
    /// Subtrees cut by early termination (Theorem 5).
    pub early_terminations: u64,
    /// Subtrees cut by the size upper bound (maximum search).
    pub bound_prunes: u64,
    /// Maximal checks performed (Theorem 6).
    pub maximal_checks: u64,
    /// Re-split events: a running parallel subtask noticed the pool was
    /// starving and donated part of its remaining frontier.
    pub resplits: u64,
    /// Subtasks created by re-splitting (in addition to the initial
    /// top-`d` frontier split).
    pub resplit_subtasks: u64,
}

/// Mutable search-node state over one component.
pub struct SearchState<'a> {
    /// The arena.
    pub comp: &'a LocalComponent,
    /// Degree threshold.
    pub k: u32,
    status: Vec<Status>,
    deg_mc: Vec<u32>,
    deg_m: Vec<u32>,
    dp_c: Vec<u32>,
    dp_e: Vec<u32>,
    n_m: u32,
    n_c: u32,
    n_e: u32,
    /// `Σ_{v ∈ C} dp_c[v]` = `2 · DP(C)`.
    sum_dp_c: u64,
    /// `Σ_{v ∈ M∪C} deg_mc[v]` = `2 · |E(M ∪ C)|`.
    sum_deg_mc: u64,
    /// Number of `C` vertices with `dp_c = 0` (i.e. `|SF(C)|`).
    sf_count: u32,
    trail: Vec<(VertexId, Status)>,
    /// Worklist for structure cascades (drained inside expand/shrink).
    pending: Vec<VertexId>,
    /// Set when an `M` vertex fell below degree `k` (branch dead).
    failed: bool,
}

impl<'a> SearchState<'a> {
    /// Fresh root state: everything in `C`.
    pub fn new(comp: &'a LocalComponent) -> Self {
        let n = comp.len();
        let deg_mc: Vec<u32> = (0..n as VertexId).map(|v| comp.degree(v) as u32).collect();
        let dp_c: Vec<u32> = (0..n as VertexId)
            .map(|v| comp.dissimilar_count(v) as u32)
            .collect();
        let sum_deg_mc = deg_mc.iter().map(|&d| d as u64).sum();
        let sum_dp_c = dp_c.iter().map(|&d| d as u64).sum();
        let sf_count = dp_c.iter().filter(|&&d| d == 0).count() as u32;
        SearchState {
            comp,
            k: comp.k,
            status: vec![Status::Cand; n],
            deg_mc,
            deg_m: vec![0; n],
            dp_c,
            dp_e: vec![0; n],
            n_m: 0,
            n_c: n as u32,
            n_e: 0,
            sum_dp_c,
            sum_deg_mc,
            sf_count,
            trail: Vec::with_capacity(n * 2),
            pending: Vec::new(),
            failed: false,
        }
    }

    /// Current status of `v`.
    #[inline]
    pub fn status(&self, v: VertexId) -> Status {
        self.status[v as usize]
    }

    /// `deg(v, M ∪ C)`.
    #[inline]
    pub fn deg_mc(&self, v: VertexId) -> u32 {
        self.deg_mc[v as usize]
    }

    /// `deg(v, M)`.
    #[inline]
    pub fn deg_m(&self, v: VertexId) -> u32 {
        self.deg_m[v as usize]
    }

    /// `DP(v, C)`.
    #[inline]
    pub fn dp_c(&self, v: VertexId) -> u32 {
        self.dp_c[v as usize]
    }

    /// `DP(v, E)`.
    #[inline]
    pub fn dp_e(&self, v: VertexId) -> u32 {
        self.dp_e[v as usize]
    }

    /// `|M|`, `|C|`, `|E|`.
    pub fn sizes(&self) -> (u32, u32, u32) {
        (self.n_m, self.n_c, self.n_e)
    }

    /// `|M| + |C|` — the naive size upper bound.
    #[inline]
    pub fn mc_len(&self) -> u32 {
        self.n_m + self.n_c
    }

    /// Number of dissimilar pairs inside `C` (`DP(C)`).
    #[inline]
    pub fn dp_c_total(&self) -> u64 {
        self.sum_dp_c / 2
    }

    /// Number of edges inside `M ∪ C`.
    #[inline]
    pub fn edges_mc(&self) -> u64 {
        self.sum_deg_mc / 2
    }

    /// `|SF(C)|` — candidates similar to all other candidates.
    #[inline]
    pub fn sf_count(&self) -> u32 {
        self.sf_count
    }

    /// True when `C = SF(C)` (Theorem 4 leaf: `M ∪ C` is pairwise similar).
    #[inline]
    pub fn all_candidates_similarity_free(&self) -> bool {
        self.sf_count == self.n_c
    }

    /// Did the last cascade kill an `M` vertex?
    #[inline]
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Members of a given status, sorted.
    pub fn members(&self, s: Status) -> Vec<VertexId> {
        (0..self.comp.len() as VertexId)
            .filter(|&v| self.status[v as usize] == s)
            .collect()
    }

    /// Trail mark for later rollback.
    #[inline]
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Rolls the state back to a previous [`mark`](Self::mark).
    pub fn rollback(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let (v, old) = self.trail.pop().expect("trail underflow");
            let cur = self.status[v as usize];
            self.apply_transition(v, cur, old, false);
        }
        self.failed = false;
        self.pending.clear();
    }

    /// Status transition with full counter maintenance. `record` pushes the
    /// inverse onto the trail (false during rollback).
    fn apply_transition(&mut self, v: VertexId, from: Status, to: Status, record: bool) {
        debug_assert_eq!(self.status[v as usize], from);
        if from == to {
            return;
        }
        if record {
            self.trail.push((v, from));
        }
        let vi = v as usize;
        let was_mc = matches!(from, Status::Chosen | Status::Cand);
        let is_mc = matches!(to, Status::Chosen | Status::Cand);
        let was_m = from == Status::Chosen;
        let is_m = to == Status::Chosen;
        let was_c = from == Status::Cand;
        let is_c = to == Status::Cand;
        let was_e = from == Status::Excluded;
        let is_e = to == Status::Excluded;

        // --- v's own aggregate membership (uses v's counters, which do not
        // change here: they count *other* vertices). ---
        if was_c {
            self.n_c -= 1;
            self.sum_dp_c -= self.dp_c[vi] as u64;
            if self.dp_c[vi] == 0 {
                self.sf_count -= 1;
            }
        }
        if is_c {
            self.n_c += 1;
            self.sum_dp_c += self.dp_c[vi] as u64;
            if self.dp_c[vi] == 0 {
                self.sf_count += 1;
            }
        }
        if was_m {
            self.n_m -= 1;
        }
        if is_m {
            self.n_m += 1;
        }
        if was_e {
            self.n_e -= 1;
        }
        if is_e {
            self.n_e += 1;
        }
        if was_mc && !is_mc {
            self.sum_deg_mc -= self.deg_mc[vi] as u64;
        }
        if !was_mc && is_mc {
            self.sum_deg_mc += self.deg_mc[vi] as u64;
        }

        self.status[vi] = to;

        // The arena outlives `self`'s mutable borrow: copy the `&'a`
        // reference out so the CSR slices can be walked while counters
        // mutate.
        let comp = self.comp;

        // --- adjacency-side counters of neighbors. ---
        if was_mc != is_mc || was_m != is_m {
            let delta_mc: i32 = (is_mc as i32) - (was_mc as i32);
            let delta_m: i32 = (is_m as i32) - (was_m as i32);
            for &w in comp.neighbors(v) {
                let wi = w as usize;
                if delta_mc != 0 {
                    let nd = (self.deg_mc[wi] as i32 + delta_mc) as u32;
                    self.deg_mc[wi] = nd;
                    if matches!(self.status[wi], Status::Chosen | Status::Cand) {
                        self.sum_deg_mc = (self.sum_deg_mc as i64 + delta_mc as i64) as u64;
                        // Structure-pruning trigger (only meaningful while
                        // cascading; harmless otherwise).
                        if delta_mc < 0 && nd < self.k {
                            self.pending.push(w);
                        }
                    }
                }
                if delta_m != 0 {
                    self.deg_m[wi] = (self.deg_m[wi] as i32 + delta_m) as u32;
                }
            }
        }
        // --- dissimilarity-side counters of partners. A resident row is
        // iterated as a slice (hot path); otherwise the complement is
        // streamed, so lazy components never materialize a row for a
        // status flip. ---
        if was_c != is_c || was_e != is_e {
            let delta_c: i32 = (is_c as i32) - (was_c as i32);
            let delta_e: i32 = (is_e as i32) - (was_e as i32);
            let mut apply = |w: VertexId| {
                let wi = w as usize;
                if delta_c != 0 {
                    let nd = (self.dp_c[wi] as i32 + delta_c) as u32;
                    self.dp_c[wi] = nd;
                    if self.status[wi] == Status::Cand {
                        self.sum_dp_c = (self.sum_dp_c as i64 + delta_c as i64) as u64;
                        if delta_c < 0 && nd == 0 {
                            self.sf_count += 1;
                        } else if delta_c > 0 && nd == 1 {
                            self.sf_count -= 1;
                        }
                    }
                }
                if delta_e != 0 {
                    self.dp_e[wi] = (self.dp_e[wi] as i32 + delta_e) as u32;
                }
            };
            if let Some(row) = comp.dissimilar_resident(v) {
                for &w in row {
                    apply(w);
                }
            } else {
                comp.for_each_dissimilar(v, apply);
            }
        }
    }

    /// Records and applies a transition (public for the enumeration
    /// drivers; cascading variants below are what algorithms normally use).
    pub fn set_status(&mut self, v: VertexId, to: Status) {
        let from = self.status[v as usize];
        self.apply_transition(v, from, to, true);
    }

    /// Expand branch with Theorems 2–3 pruning: move `u` from `C` to `M`,
    /// evict candidates and excluded vertices dissimilar to `u`
    /// (Theorem 3 / the E-set invariant), then run the structure cascade
    /// (Theorem 2). Returns `false` (and sets `failed`) if some `M` vertex
    /// lost the structure constraint — the caller must roll back.
    pub fn expand(&mut self, u: VertexId) -> bool {
        debug_assert_eq!(self.status[u as usize], Status::Cand);
        self.pending.clear();
        self.failed = false;
        self.set_status(u, Status::Chosen);
        // Similarity eviction of dissimilar partners (the CSR slice
        // borrows the arena, not `self`).
        let comp = self.comp;
        for &w in comp.dissimilar(u) {
            match self.status[w as usize] {
                Status::Cand | Status::Excluded => self.set_status(w, Status::Gone),
                _ => {}
            }
        }
        self.structure_cascade()
    }

    /// Expand without any pruning (NaiveEnum).
    pub fn expand_naive(&mut self, u: VertexId) {
        debug_assert_eq!(self.status[u as usize], Status::Cand);
        self.set_status(u, Status::Chosen);
    }

    /// Shrink branch: move `u` from `C` to `E` (it is similar to all of `M`
    /// by the similarity invariant), then run the structure cascade.
    pub fn shrink(&mut self, u: VertexId) -> bool {
        debug_assert_eq!(self.status[u as usize], Status::Cand);
        self.pending.clear();
        self.failed = false;
        self.set_status(u, Status::Excluded);
        self.structure_cascade()
    }

    /// Shrink without pruning or E-tracking (NaiveEnum).
    pub fn shrink_naive(&mut self, u: VertexId) {
        debug_assert_eq!(self.status[u as usize], Status::Cand);
        self.set_status(u, Status::Gone);
    }

    /// Theorem 2 cascade: recursively move `C` vertices with
    /// `deg(·, M∪C) < k` to `E` (they stay similar to `M`); fail the branch
    /// if an `M` vertex drops below `k`.
    fn structure_cascade(&mut self) -> bool {
        while let Some(v) = self.pending.pop() {
            let vi = v as usize;
            if self.deg_mc[vi] >= self.k {
                continue; // stale entry
            }
            match self.status[vi] {
                Status::Cand => self.set_status(v, Status::Excluded),
                Status::Chosen => {
                    self.failed = true;
                    self.pending.clear();
                    return false;
                }
                _ => {}
            }
        }
        // Also catch vertices that were already below k before this branch
        // move (possible at the root when the component is exactly a
        // k-core: nothing to do; but after restoring from deep rollbacks the
        // pending queue is empty, so scan nothing). The cascade above is
        // complete because every degree drop pushes to `pending`.
        debug_assert!(self.pending.is_empty());
        true
    }

    /// Runs an initial structure cascade at the root (useful when the
    /// component was built with a smaller k than the query, e.g. in tests).
    pub fn prune_root(&mut self) -> bool {
        self.pending.clear();
        self.failed = false;
        for v in 0..self.comp.len() as VertexId {
            if self.status[v as usize] == Status::Cand && self.deg_mc[v as usize] < self.k {
                self.pending.push(v);
            }
        }
        self.structure_cascade()
    }

    /// Checks Eq. 1 / Eq. 2 and E-set invariants (debug builds only).
    pub fn debug_assert_invariants(&self) {
        if cfg!(debug_assertions) && !self.failed {
            for v in 0..self.comp.len() as VertexId {
                let vi = v as usize;
                let st = self.status[vi];
                // Recompute counters from scratch.
                let deg_mc = self
                    .comp
                    .neighbors(v)
                    .iter()
                    .filter(|&&w| matches!(self.status[w as usize], Status::Chosen | Status::Cand))
                    .count() as u32;
                assert_eq!(deg_mc, self.deg_mc[vi], "deg_mc mismatch at {v}");
                let mut dp_c = 0u32;
                self.comp.for_each_dissimilar(v, |w| {
                    if self.status[w as usize] == Status::Cand {
                        dp_c += 1;
                    }
                });
                assert_eq!(dp_c, self.dp_c[vi], "dp_c mismatch at {v}");
                if st == Status::Chosen {
                    // Similarity invariant Eq. 1.
                    let mut dp_mc = 0usize;
                    self.comp.for_each_dissimilar(v, |w| {
                        if matches!(self.status[w as usize], Status::Chosen | Status::Cand) {
                            dp_mc += 1;
                        }
                    });
                    assert_eq!(dp_mc, 0, "Eq.1 violated at {v}");
                }
                if st == Status::Excluded {
                    // E members similar to all of M.
                    let mut dp_m = 0usize;
                    self.comp.for_each_dissimilar(v, |w| {
                        if self.status[w as usize] == Status::Chosen {
                            dp_m += 1;
                        }
                    });
                    assert_eq!(dp_m, 0, "E-invariant violated at {v}");
                }
                if matches!(st, Status::Chosen | Status::Cand) {
                    // Degree invariant Eq. 2.
                    assert!(self.deg_mc[vi] >= self.k, "Eq.2 violated at {v}");
                }
            }
        }
    }

    /// Connected components of the current `M ∪ C` (local ids, sorted
    /// inside each component).
    pub fn mc_components(&self) -> Vec<Vec<VertexId>> {
        let n = self.comp.len();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        let mut stack = Vec::new();
        for s in 0..n {
            if seen[s] || !matches!(self.status[s], Status::Chosen | Status::Cand) {
                continue;
            }
            let mut comp = Vec::new();
            seen[s] = true;
            stack.push(s as VertexId);
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &w in self.comp.neighbors(v) {
                    let wi = w as usize;
                    if !seen[wi] && matches!(self.status[wi], Status::Chosen | Status::Cand) {
                        seen[wi] = true;
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::LocalComponent;

    /// 4-clique (0-3) plus vertex 4 adjacent to 2,3; 4 dissimilar to 0.
    fn fixture() -> LocalComponent {
        LocalComponent::from_parts(
            vec![
                vec![1, 2, 3],
                vec![0, 2, 3],
                vec![0, 1, 3, 4],
                vec![0, 1, 2, 4],
                vec![2, 3],
            ],
            vec![vec![4], vec![], vec![], vec![], vec![0]],
            2,
        )
    }

    #[test]
    fn root_counters() {
        let comp = fixture();
        let st = SearchState::new(&comp);
        assert_eq!(st.sizes(), (0, 5, 0));
        assert_eq!(st.edges_mc(), 8);
        assert_eq!(st.dp_c_total(), 1);
        assert_eq!(st.sf_count(), 3);
        assert!(!st.all_candidates_similarity_free());
        st.debug_assert_invariants();
    }

    #[test]
    fn expand_evicts_dissimilar() {
        let comp = fixture();
        let mut st = SearchState::new(&comp);
        let m = st.mark();
        assert!(st.expand(0));
        // 4 is dissimilar to 0 -> Gone; degrees of 2,3 drop to 3 (>= 2).
        assert_eq!(st.status(4), Status::Gone);
        assert_eq!(st.status(0), Status::Chosen);
        assert_eq!(st.sizes(), (1, 3, 0));
        assert_eq!(st.dp_c_total(), 0);
        assert!(st.all_candidates_similarity_free());
        st.debug_assert_invariants();
        st.rollback(m);
        assert_eq!(st.sizes(), (0, 5, 0));
        assert_eq!(st.status(4), Status::Cand);
        assert_eq!(st.dp_c_total(), 1);
        assert_eq!(st.sf_count(), 3);
        st.debug_assert_invariants();
    }

    #[test]
    fn shrink_moves_to_excluded_and_cascades() {
        let comp = fixture();
        let mut st = SearchState::new(&comp);
        let m = st.mark();
        // Shrinking 2 drops 4 to degree 1 < 2 -> cascaded into E.
        assert!(st.shrink(2));
        assert_eq!(st.status(2), Status::Excluded);
        assert_eq!(st.status(4), Status::Excluded);
        assert_eq!(st.sizes(), (0, 3, 2));
        st.debug_assert_invariants();
        st.rollback(m);
        assert_eq!(st.sizes(), (0, 5, 0));
    }

    #[test]
    fn m_vertex_failure_detected() {
        // Triangle with k = 2: expanding all of it then shrinking a member
        // is impossible; instead simulate by choosing 0 into M and removing
        // both its neighbors.
        let comp = LocalComponent::from_parts(
            vec![vec![1, 2], vec![0, 2], vec![0, 1]],
            vec![vec![], vec![], vec![]],
            2,
        );
        let mut st = SearchState::new(&comp);
        assert!(st.expand(0));
        let m = st.mark();
        // Shrinking 1: drops 0 and 2 to degree 1 < 2 -> M-vertex 0 dies.
        assert!(!st.shrink(1));
        assert!(st.failed());
        st.rollback(m);
        assert!(!st.failed());
        st.debug_assert_invariants();
        assert_eq!(st.sizes(), (1, 2, 0));
    }

    #[test]
    fn expand_evicts_excluded_dissimilar_to_new_m() {
        let comp = fixture();
        let mut st = SearchState::new(&comp);
        // Push 4 into E by shrinking 2 (cascade), then expand 0: 4 must go
        // from E to Gone since dissimilar to 0.
        assert!(st.shrink(2));
        assert_eq!(st.status(4), Status::Excluded);
        assert!(st.expand(0));
        assert_eq!(st.status(4), Status::Gone);
        st.debug_assert_invariants();
    }

    #[test]
    fn mc_components_splits() {
        // Two triangles, no connecting edges.
        let comp = LocalComponent::from_parts(
            vec![
                vec![1, 2],
                vec![0, 2],
                vec![0, 1],
                vec![4, 5],
                vec![3, 5],
                vec![3, 4],
            ],
            vec![vec![]; 6],
            2,
        );
        let st = SearchState::new(&comp);
        let comps = st.mc_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4, 5]);
    }

    #[test]
    fn naive_ops_do_not_cascade() {
        let comp = fixture();
        let mut st = SearchState::new(&comp);
        st.expand_naive(0);
        // No eviction in naive mode.
        assert_eq!(st.status(4), Status::Cand);
        st.shrink_naive(4);
        assert_eq!(st.status(4), Status::Gone);
        assert_eq!(st.sizes(), (1, 3, 0));
    }

    #[test]
    fn deep_rollback_restores_root() {
        let comp = fixture();
        let mut st = SearchState::new(&comp);
        let root = st.mark();
        assert!(st.expand(2));
        assert!(st.expand(3));
        let _ = st.shrink(0);
        st.rollback(root);
        assert_eq!(st.sizes(), (0, 5, 0));
        assert_eq!(st.edges_mc(), 8);
        assert_eq!(st.dp_c_total(), 1);
        assert_eq!(st.sf_count(), 3);
        st.debug_assert_invariants();
    }
}
