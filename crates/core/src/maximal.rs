//! Maximal check (Theorem 6, Algorithm 4).
//!
//! Given a freshly found (k,r)-core `R` and the relevant excluded set `E`
//! (plus any co-leaf vertices outside `R`), `R` is maximal iff no non-empty
//! subset `U` of those vertices yields a (k,r)-core `R ∪ U`. The check is
//! itself a small expand/shrink search: candidates dissimilar to `R` are
//! dropped up front, the rest are branched on with the degree order and
//! expand-first policy of Section 7.4, and the search exits at the first
//! strictly larger core found.

use crate::component::LocalComponent;
use crate::config::CheckOrder;
use kr_graph::VertexId;

/// Returns true iff `core` (local ids, a valid (k,r)-core of `comp`)
/// cannot be extended by any subset of `candidates` into a larger
/// (k,r)-core. `candidates` must cover every vertex that could possibly
/// extend `core` (Theorem 6's `E`, plus co-leaf vertices when applicable).
pub fn check_maximal(
    comp: &LocalComponent,
    k: u32,
    core: &[VertexId],
    candidates: &[VertexId],
) -> bool {
    check_maximal_with_order(comp, k, core, candidates, CheckOrder::Degree, 5.0)
}

/// [`check_maximal`] with an explicit candidate order — the ablation of
/// Figure 11(f). `Degree` (the paper's pick for this sub-search) chooses
/// the candidate with the most neighbors inside `M ∪ C`; the other two
/// approximate the enumeration/maximum orders on the check's smaller
/// state: `Δ1` counts a candidate's dissimilar partners among the
/// remaining candidates, `Δ2` its degree share.
pub fn check_maximal_with_order(
    comp: &LocalComponent,
    k: u32,
    core: &[VertexId],
    candidates: &[VertexId],
    order: CheckOrder,
    lambda: f64,
) -> bool {
    let n = comp.len();
    let mut in_m = vec![false; n];
    for &v in core {
        in_m[v as usize] = true;
    }
    // Pre-filter: keep only candidates similar to every member of R.
    let cand: Vec<VertexId> = candidates
        .iter()
        .copied()
        .filter(|&x| !in_m[x as usize])
        .filter(|&x| !comp.any_dissimilar_where(x, |w| in_m[w as usize]))
        .collect();
    if cand.is_empty() {
        return true;
    }
    let mut m_list: Vec<VertexId> = core.to_vec();
    let r_len = core.len();
    !extend_search(comp, k, &mut in_m, &mut m_list, r_len, cand, order, lambda)
}

/// Depth-first extension search; true iff some strictly larger core was
/// found.
#[allow(clippy::too_many_arguments)]
fn extend_search(
    comp: &LocalComponent,
    k: u32,
    in_m: &mut Vec<bool>,
    m_list: &mut Vec<VertexId>,
    r_len: usize,
    mut cand: Vec<VertexId>,
    order: CheckOrder,
    lambda: f64,
) -> bool {
    // Pruning fixpoint: a candidate needs degree >= k inside M ∪ C to ever
    // satisfy the constraint (Theorem 2), and must be reachable from R
    // through M ∪ C to ever join a *connected* superset core.
    let mut in_c = vec![false; comp.len()];
    loop {
        let before = cand.len();
        for x in in_c.iter_mut() {
            *x = false;
        }
        for &c in &cand {
            in_c[c as usize] = true;
        }
        cand.retain(|&c| {
            let d = comp
                .neighbors(c)
                .iter()
                .filter(|&&w| in_m[w as usize] || in_c[w as usize])
                .count() as u32;
            if d < k {
                in_c[c as usize] = false;
                false
            } else {
                true
            }
        });
        // Connectivity: BFS from R over M ∪ C. Unreachable candidates can
        // never contribute; an unreachable *chosen* vertex kills the branch.
        let mut seen = vec![false; comp.len()];
        let mut stack = vec![m_list[0]];
        seen[m_list[0] as usize] = true;
        while let Some(v) = stack.pop() {
            for &w in comp.neighbors(v) {
                let wi = w as usize;
                if !seen[wi] && (in_m[wi] || in_c[wi]) {
                    seen[wi] = true;
                    stack.push(w);
                }
            }
        }
        if m_list.iter().any(|&v| !seen[v as usize]) {
            return false;
        }
        cand.retain(|&c| {
            if seen[c as usize] {
                true
            } else {
                in_c[c as usize] = false;
                false
            }
        });
        if cand.len() == before {
            break;
        }
    }
    // Is the current M = R ∪ chosen a strictly larger (k,r)-core?
    if m_list.len() > r_len
        && chosen_satisfy_structure(comp, k, in_m, &m_list[r_len..])
        && is_m_connected(comp, in_m, m_list)
    {
        return true;
    }
    if cand.is_empty() {
        return false;
    }
    // Dead-branch cut: chosen vertices can never exceed their degree in
    // the full M ∪ C; if one cannot reach k even there, no subset helps.
    for &x in &m_list[r_len..] {
        let d = comp
            .neighbors(x)
            .iter()
            .filter(|&&w| in_m[w as usize] || in_c[w as usize])
            .count() as u32;
        if d < k {
            return false;
        }
    }
    // Singleton accept: one candidate alone may already extend M.
    for &c in &cand {
        let d = comp
            .neighbors(c)
            .iter()
            .filter(|&&w| in_m[w as usize])
            .count() as u32;
        if d >= k {
            in_m[c as usize] = true;
            m_list.push(c);
            let ok = chosen_satisfy_structure(comp, k, in_m, &m_list[r_len..])
                && is_m_connected(comp, in_m, m_list);
            m_list.pop();
            in_m[c as usize] = false;
            if ok {
                return true;
            }
        }
    }
    // All-similar accept: with no dissimilar pair left among candidates,
    // M ∪ C itself is a valid extension — the fixpoint guarantees candidate
    // degrees and R-reachability, and chosen degrees were just verified
    // against the full M ∪ C.
    let any_dissimilar = cand
        .iter()
        .any(|&c| comp.any_dissimilar_where(c, |w| in_c[w as usize]));
    if !any_dissimilar {
        return true;
    }
    // Full counts (not just existence) — only the non-default orders pay
    // for them.
    let dis_of = |c: VertexId| {
        let mut d = 0usize;
        comp.for_each_dissimilar(c, |w| {
            if in_c[w as usize] {
                d += 1;
            }
        });
        d
    };
    let deg_of = |c: VertexId| {
        comp.neighbors(c)
            .iter()
            .filter(|&&w| in_m[w as usize] || in_c[w as usize])
            .count()
    };
    let u = match order {
        // Highest degree within M ∪ C (Section 7.4, the winner here).
        CheckOrder::Degree => cand
            .iter()
            .copied()
            .max_by_key(|&c| deg_of(c))
            .expect("non-empty candidates"),
        // Enumeration-style: most dissimilar partners first, degree ties.
        CheckOrder::Delta1ThenDelta2 => cand
            .iter()
            .copied()
            .max_by_key(|&c| (dis_of(c), deg_of(c)))
            .expect("non-empty candidates"),
        // Maximum-style score.
        CheckOrder::LambdaDelta => {
            let total_dis = cand.iter().map(|&c| dis_of(c)).sum::<usize>().max(1) as f64;
            let total_deg = cand.iter().map(|&c| deg_of(c)).sum::<usize>().max(1) as f64;
            cand.iter()
                .copied()
                .max_by(|&a, &b| {
                    let sa = lambda * dis_of(a) as f64 / total_dis - deg_of(a) as f64 / total_deg;
                    let sb = lambda * dis_of(b) as f64 / total_dis - deg_of(b) as f64 / total_deg;
                    sa.partial_cmp(&sb).expect("no NaN")
                })
                .expect("non-empty candidates")
        }
    };

    // Expand branch first.
    let expand_cand: Vec<VertexId> = cand
        .iter()
        .copied()
        .filter(|&c| c != u && !comp.are_dissimilar(c, u))
        .collect();
    in_m[u as usize] = true;
    m_list.push(u);
    if extend_search(comp, k, in_m, m_list, r_len, expand_cand, order, lambda) {
        // Leave state dirty — caller stops immediately on success.
        m_list.pop();
        in_m[u as usize] = false;
        return true;
    }
    m_list.pop();
    in_m[u as usize] = false;

    // Shrink branch.
    let shrink_cand: Vec<VertexId> = cand.iter().copied().filter(|&c| c != u).collect();
    extend_search(comp, k, in_m, m_list, r_len, shrink_cand, order, lambda)
}

/// Chosen vertices must reach degree >= k inside M (R vertices already do,
/// inside R).
fn chosen_satisfy_structure(
    comp: &LocalComponent,
    k: u32,
    in_m: &[bool],
    chosen: &[VertexId],
) -> bool {
    chosen.iter().all(|&c| {
        let d = comp
            .neighbors(c)
            .iter()
            .filter(|&&w| in_m[w as usize])
            .count() as u32;
        d >= k
    })
}

/// BFS connectivity of the current M.
fn is_m_connected(comp: &LocalComponent, in_m: &[bool], m_list: &[VertexId]) -> bool {
    if m_list.len() <= 1 {
        return true;
    }
    let mut seen = vec![false; comp.len()];
    let mut stack = vec![m_list[0]];
    seen[m_list[0] as usize] = true;
    let mut count = 0usize;
    while let Some(v) = stack.pop() {
        count += 1;
        for &w in comp.neighbors(v) {
            if in_m[w as usize] && !seen[w as usize] {
                seen[w as usize] = true;
                stack.push(w);
            }
        }
    }
    count == m_list.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4-clique {0,1,2,3} all similar; k = 2.
    fn clique4() -> LocalComponent {
        LocalComponent::from_parts(
            vec![vec![1, 2, 3], vec![0, 2, 3], vec![0, 1, 3], vec![0, 1, 2]],
            vec![vec![]; 4],
            2,
        )
    }

    #[test]
    fn sub_triangle_not_maximal() {
        let comp = clique4();
        assert!(!check_maximal(&comp, 2, &[0, 1, 2], &[3]));
    }

    #[test]
    fn full_clique_maximal() {
        let comp = clique4();
        assert!(check_maximal(&comp, 2, &[0, 1, 2, 3], &[]));
    }

    #[test]
    fn dissimilar_candidate_cannot_extend() {
        // {0,1,2} triangle; 3 adjacent to all but dissimilar to 0.
        let comp = LocalComponent::from_parts(
            vec![vec![1, 2, 3], vec![0, 2, 3], vec![0, 1, 3], vec![0, 1, 2]],
            vec![vec![3], vec![], vec![], vec![0]],
            2,
        );
        assert!(check_maximal(&comp, 2, &[0, 1, 2], &[3]));
    }

    #[test]
    fn low_degree_candidate_cannot_extend() {
        // Triangle {0,1,2}; 3 attached only to 2 -> degree 1 < 2.
        let comp = LocalComponent::from_parts(
            vec![vec![1, 2], vec![0, 2], vec![0, 1, 3], vec![2]],
            vec![vec![]; 4],
            2,
        );
        assert!(check_maximal(&comp, 2, &[0, 1, 2], &[3]));
    }

    #[test]
    fn pair_of_candidates_extends_together() {
        // Example 6 pattern: neither 4 nor 5 alone extends the square
        // {0,1,2,3} (k = 2), but together they do.
        // Square 0-1-2-3-0; 4 adjacent to 0 and 5; 5 adjacent to 1 and 4.
        let comp = LocalComponent::from_parts(
            vec![
                vec![1, 3, 4],
                vec![0, 2, 5],
                vec![1, 3],
                vec![0, 2],
                vec![0, 5],
                vec![1, 4],
            ],
            vec![vec![]; 6],
            2,
        );
        assert!(!check_maximal(&comp, 2, &[0, 1, 2, 3], &[4, 5]));
        // Individually they die in the structure-prune fixpoint.
        assert!(check_maximal(&comp, 2, &[0, 1, 2, 3], &[4]));
        assert!(check_maximal(&comp, 2, &[0, 1, 2, 3], &[5]));
    }

    #[test]
    fn disconnected_extension_rejected() {
        // Triangle {0,1,2} plus a far triangle {3,4,5} with no edges
        // between them: even though degrees work out inside {3,4,5}, the
        // union is disconnected, so {0,1,2} stays maximal.
        let comp = LocalComponent::from_parts(
            vec![
                vec![1, 2],
                vec![0, 2],
                vec![0, 1],
                vec![4, 5],
                vec![3, 5],
                vec![3, 4],
            ],
            vec![vec![]; 6],
            2,
        );
        assert!(check_maximal(&comp, 2, &[0, 1, 2], &[3, 4, 5]));
    }

    #[test]
    fn mutually_dissimilar_candidates_branch() {
        // Square {0,1,2,3}; 4 and 5 both could extend but are dissimilar
        // to each other AND each alone has degree 2 via the square.
        // 4 adjacent to 0,1; 5 adjacent to 2,3; dis(4,5).
        let comp = LocalComponent::from_parts(
            vec![
                vec![1, 3, 4],
                vec![0, 2, 4],
                vec![1, 3, 5],
                vec![0, 2, 5],
                vec![0, 1],
                vec![2, 3],
            ],
            vec![vec![], vec![], vec![], vec![], vec![5], vec![4]],
            2,
        );
        // {0,1,2,3,4} is a core (4 has degree 2) -> not maximal.
        assert!(!check_maximal(&comp, 2, &[0, 1, 2, 3], &[4, 5]));
    }
}
