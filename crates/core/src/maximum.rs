//! Finding the maximum (k,r)-core (Algorithm 5).
//!
//! The same branch-and-prune walk as the enumeration, with three changes
//! (Section 6.1): the subtree is cut when the size upper bound cannot beat
//! the best core seen so far, no maximal check is needed, and the branch
//! order is chosen adaptively to reach large cores early.
//!
//! The expensive bounds are evaluated lazily: the O(1) naive bound runs
//! first and the configured bound is consulted only when the naive one
//! fails to prune — semantics are unchanged because every bound is ≤ the
//! naive bound.

use crate::bounds::size_upper_bound;
use crate::component::LocalComponent;
use crate::config::{AlgoConfig, BoundKind, BranchPolicy};
use crate::early_term::can_terminate;
use crate::enumerate::promote_free_candidates;
use crate::order::{Chooser, FirstBranch};
use crate::problem::ProblemInstance;
use crate::result::KrCore;
use crate::search::{Decision, SearchState, SearchStats};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Result of a maximum search.
#[derive(Debug, Clone)]
pub struct MaxResult {
    /// The maximum (k,r)-core, or `None` when no (k,r)-core exists.
    pub core: Option<KrCore>,
    /// Search statistics summed over components.
    pub stats: SearchStats,
    /// False when the node limit was hit (result may be suboptimal).
    pub completed: bool,
}

/// Finds the maximum (k,r)-core of `problem` under `cfg`.
///
/// With [`AlgoConfig::threads`] ≠ 1 the run is dispatched to the
/// work-stealing engine of [`crate::parallel`], which shares the incumbent
/// size across workers through an atomic and — for deterministic search
/// orders — returns the identical core. Node-limited runs stay
/// sequential: a per-worker node budget would change what "limit reached"
/// means and break that equivalence.
pub fn find_maximum(problem: &ProblemInstance, cfg: &AlgoConfig) -> MaxResult {
    if parallel_eligible(cfg) {
        return crate::parallel::find_maximum_parallel(problem, cfg);
    }
    find_maximum_sequential(&problem.preprocess(), cfg)
}

/// [`find_maximum`] over components preprocessed earlier (e.g. by
/// [`ProblemInstance::preprocess`] or pulled from a serving-layer cache):
/// the initial peel/split stage is skipped. The components must stem from
/// the same `(k, r)` the query runs with.
pub fn find_maximum_prepared(comps: &[LocalComponent], cfg: &AlgoConfig) -> MaxResult {
    if parallel_eligible(cfg) {
        return crate::parallel::find_maximum_parallel_prepared(comps, cfg);
    }
    find_maximum_sequential(comps, cfg)
}

/// [`find_maximum_prepared`] on a caller-provided pool (see
/// [`crate::enumerate_maximal_prepared_on`] for when the pool is used).
pub fn find_maximum_prepared_on(
    comps: &[LocalComponent],
    cfg: &AlgoConfig,
    pool: &rayon::ThreadPool,
) -> MaxResult {
    if parallel_eligible(cfg) {
        return crate::parallel::find_maximum_on(comps, cfg, pool);
    }
    find_maximum_sequential(comps, cfg)
}

/// Node-limited runs stay sequential (a per-worker node budget would
/// change what "limit reached" means and break result equivalence).
fn parallel_eligible(cfg: &AlgoConfig) -> bool {
    cfg.threads != 1 && cfg.node_limit.is_none()
}

fn find_maximum_sequential(comps: &[LocalComponent], cfg: &AlgoConfig) -> MaxResult {
    let mut stats = SearchStats::default();
    let mut completed = true;
    let mut best: Option<KrCore> = None;
    // One wall-clock budget for the whole run, shared by all components.
    let deadline = cfg
        .time_limit_ms
        .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));

    // Components are ordered so that the one holding the highest-degree
    // vertex is searched first (Section 6.1); later components whose total
    // size cannot beat the incumbent are skipped outright.
    for comp in comps {
        let best_len = best.as_ref().map_or(0, |c| c.len());
        if comp.len() <= best_len {
            stats.bound_prunes += 1;
            continue;
        }
        let mut driver = MaxDriver::new(comp, cfg, deadline, best_len, None);
        let mut st = SearchState::new(comp);
        if st.prune_root() {
            driver.rec(&mut st);
        }
        if !driver.best_local.is_empty() {
            best = Some(KrCore::new(comp.globalize(&driver.best_local)));
        }
        merge(&mut stats, driver.stats);
        completed &= !driver.aborted;
    }
    MaxResult {
        core: best,
        stats,
        completed,
    }
}

fn merge(into: &mut SearchStats, from: SearchStats) {
    crate::enumerate::merge_stats(into, from)
}

/// One DFS-ordered event produced by the maximum search's frontier
/// generation (see [`crate::parallel`] for the merge protocol that keeps
/// parallel results identical to sequential ones).
#[derive(Debug, Clone)]
pub(crate) enum MaxEvent {
    /// A suspended subtree, to be replayed and searched by a worker. The
    /// attached incumbent is the generator's best size when the task was
    /// created — i.e. exactly the DFS-prefix knowledge a sequential run
    /// would have had — so workers never prune on information from
    /// DFS-later parts of the tree except through the *strict* shared
    /// atomic bound, which provably cannot prune the final winner.
    Task {
        /// Decision path from the component root to the subtree.
        prefix: Vec<Decision>,
        /// Generator incumbent (best size) at task creation.
        start_incumbent: usize,
    },
    /// A (k,r)-core found above the split depth that improved the
    /// generator's incumbent.
    Found {
        /// Size of the piece.
        size: usize,
        /// Members (component-local ids).
        piece: Vec<kr_graph::VertexId>,
    },
}

pub(crate) struct MaxDriver<'a> {
    comp: &'a LocalComponent,
    cfg: &'a AlgoConfig,
    chooser: Chooser,
    pub(crate) stats: SearchStats,
    pub(crate) aborted: bool,
    /// Best core found in this component (local ids); empty = none yet.
    pub(crate) best_local: Vec<kr_graph::VertexId>,
    /// Size to beat (max of start incumbent and local best).
    pub(crate) best_len: usize,
    deadline: Option<std::time::Instant>,
    /// Shared incumbent size, published by every worker of a parallel
    /// run. Only consulted with a *strict* comparison (`ub < global`):
    /// unlike `best_len`, this value may stem from DFS-later subtrees, and
    /// pruning `ub == global` there could cut the tie-breaking core the
    /// sequential run would have returned.
    global: Option<&'a AtomicUsize>,
    /// Re-split host, armed by [`Self::with_host`] on parallel task
    /// drivers (see [`crate::parallel::DonationHost`]).
    host: Option<&'a dyn crate::parallel::DonationHost>,
    /// Decision path from the component root to the current node
    /// (prefix decisions included for task drivers).
    path: Vec<Decision>,
    /// One entry per ancestor whose second branch is still pending —
    /// the frontier a re-split donates from.
    slots: Vec<crate::parallel::DonationSlot>,
    /// DFS-ordered merge events (improving finds and donated-child
    /// markers), recorded only when a host is armed.
    pub(crate) events: Vec<crate::parallel::MergeEvent>,
}

impl<'a> MaxDriver<'a> {
    pub(crate) fn new(
        comp: &'a LocalComponent,
        cfg: &'a AlgoConfig,
        deadline: Option<std::time::Instant>,
        best_len: usize,
        global: Option<&'a AtomicUsize>,
    ) -> Self {
        MaxDriver {
            comp,
            cfg,
            chooser: Chooser::new(cfg, comp.len()),
            stats: SearchStats::default(),
            aborted: false,
            best_local: Vec::new(),
            best_len,
            deadline,
            global,
            host: None,
            path: Vec::new(),
            slots: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Arms re-splitting on this (parallel task) driver: `host` is polled
    /// at node entry and pending sibling branches of the DFS path are
    /// donated as fresh subtasks when the pool runs dry. Also switches
    /// the driver to recording DFS-ordered [`crate::parallel::MergeEvent`]s.
    pub(crate) fn with_host(mut self, host: &'a dyn crate::parallel::DonationHost) -> Self {
        self.host = Some(host);
        self
    }

    fn budget_exceeded(&mut self) -> bool {
        if let Some(limit) = self.cfg.node_limit {
            if self.stats.nodes >= limit {
                self.aborted = true;
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if std::time::Instant::now() >= deadline {
                self.aborted = true;
                return true;
            }
        }
        if let Some(cancel) = &self.cfg.cancel {
            if cancel.is_cancelled() {
                self.aborted = true;
                return true;
            }
        }
        false
    }

    /// Algorithm 5 line 2 pruning: local incumbent with `<=`, shared
    /// atomic incumbent with `<` (see the `global` field docs).
    fn bound_cut(&self, ub: usize) -> bool {
        ub <= self.best_len || self.global.is_some_and(|g| ub < g.load(Ordering::Relaxed))
    }

    pub(crate) fn rec(&mut self, st: &mut SearchState<'a>) {
        self.stats.nodes += 1;
        if self.budget_exceeded() {
            return;
        }
        crate::parallel::maybe_donate(
            self.host,
            &self.path,
            &mut self.slots,
            self.best_len,
            &mut self.stats,
        );
        if self.cfg.retain_candidates {
            promote_free_candidates(st);
        }
        if self.cfg.early_termination && can_terminate(st) {
            self.stats.early_terminations += 1;
            return;
        }
        // Upper-bound pruning (Algorithm 5 line 2). Cheap bound first.
        if self.bound_cut(st.mc_len() as usize) {
            self.stats.bound_prunes += 1;
            return;
        }
        if self.cfg.bound != BoundKind::Naive
            && self.bound_cut(size_upper_bound(st, self.cfg.bound) as usize)
        {
            self.stats.bound_prunes += 1;
            return;
        }
        if st.all_candidates_similarity_free() {
            self.stats.leaves += 1;
            self.record_leaf(st);
            return;
        }
        let Some((u, preferred)) = self.chooser.choose(st, false) else {
            return;
        };
        let first = match self.cfg.branch {
            BranchPolicy::AlwaysExpand => FirstBranch::Expand,
            BranchPolicy::AlwaysShrink => FirstBranch::Shrink,
            BranchPolicy::Adaptive => preferred,
        };
        // Task drivers track the DFS path and the pending second branch
        // of every ancestor (the re-split frontier); a donated sibling is
        // skipped inline and marked with a `Child` event so the merge can
        // splice the donated task's finds in at exactly this DFS point.
        let track = self.host.is_some();
        let branches = match first {
            FirstBranch::Expand => [true, false],
            FirstBranch::Shrink => [false, true],
        };
        let m = st.mark();
        let mut donated = None;
        let ok = if branches[0] {
            st.expand(u)
        } else {
            st.shrink(u)
        };
        if ok {
            if track {
                self.slots.push(crate::parallel::DonationSlot {
                    depth: self.path.len(),
                    sibling: (u, branches[1]),
                    donated: None,
                });
                self.path.push((u, branches[0]));
            }
            self.rec(st);
            if track {
                self.path.pop();
                donated = self.slots.pop().expect("slot pushed above").donated;
            }
        }
        st.rollback(m);
        match donated {
            Some(tid) => self.events.push(crate::parallel::MergeEvent::Child(tid)),
            None => {
                let ok = if branches[1] {
                    st.expand(u)
                } else {
                    st.shrink(u)
                };
                if ok {
                    if track {
                        self.path.push((u, branches[1]));
                    }
                    self.rec(st);
                    if track {
                        self.path.pop();
                    }
                }
                st.rollback(m);
            }
        }
    }

    /// Every connected piece of a Theorem 4 leaf is a (k,r)-core; keep the
    /// largest and publish its size to the shared bound.
    fn record_leaf(&mut self, st: &SearchState<'a>) {
        for piece in st.mc_components() {
            if piece.len() > self.best_len && piece.len() > self.comp.k as usize {
                self.best_len = piece.len();
                if self.host.is_some() {
                    self.events.push(crate::parallel::MergeEvent::Found {
                        size: piece.len(),
                        piece: piece.clone(),
                    });
                }
                self.best_local = piece;
                if let Some(g) = self.global {
                    // `fetch_max` returns the previous value; a smaller
                    // previous value means this worker actually advanced
                    // the shared incumbent.
                    if g.fetch_max(self.best_len, Ordering::Relaxed) < self.best_len {
                        crate::obs::engine_obs().incumbent_updates.inc();
                    }
                }
            }
        }
    }

    /// Depth-limited descent for the parallel engine: identical per-node
    /// logic to [`Self::rec`], but subtrees below `depth` become
    /// [`MaxEvent::Task`]s and shallow finds become [`MaxEvent::Found`]s,
    /// in DFS order (respecting the branch policy).
    pub(crate) fn collect_frontier(&mut self, depth: usize) -> Vec<MaxEvent> {
        let mut out = Vec::new();
        let mut st = SearchState::new(self.comp);
        if !st.prune_root() {
            return out;
        }
        let mut path = Vec::new();
        self.frontier_rec(&mut st, depth, &mut path, &mut out);
        out
    }

    fn frontier_rec(
        &mut self,
        st: &mut SearchState<'a>,
        depth_left: usize,
        path: &mut Vec<Decision>,
        out: &mut Vec<MaxEvent>,
    ) {
        if depth_left == 0 {
            out.push(MaxEvent::Task {
                prefix: path.clone(),
                start_incumbent: self.best_len,
            });
            return;
        }
        self.stats.nodes += 1;
        if self.budget_exceeded() {
            return;
        }
        if self.cfg.retain_candidates {
            promote_free_candidates(st);
        }
        if self.cfg.early_termination && can_terminate(st) {
            self.stats.early_terminations += 1;
            return;
        }
        if self.bound_cut(st.mc_len() as usize) {
            self.stats.bound_prunes += 1;
            return;
        }
        if self.cfg.bound != BoundKind::Naive
            && self.bound_cut(size_upper_bound(st, self.cfg.bound) as usize)
        {
            self.stats.bound_prunes += 1;
            return;
        }
        if st.all_candidates_similarity_free() {
            self.stats.leaves += 1;
            for piece in st.mc_components() {
                if piece.len() > self.best_len && piece.len() > self.comp.k as usize {
                    self.best_len = piece.len();
                    self.best_local = piece.clone();
                    out.push(MaxEvent::Found {
                        size: piece.len(),
                        piece,
                    });
                }
            }
            return;
        }
        let Some((u, preferred)) = self.chooser.choose(st, false) else {
            return;
        };
        let first = match self.cfg.branch {
            BranchPolicy::AlwaysExpand => FirstBranch::Expand,
            BranchPolicy::AlwaysShrink => FirstBranch::Shrink,
            BranchPolicy::Adaptive => preferred,
        };
        let m = st.mark();
        let branches = match first {
            FirstBranch::Expand => [true, false],
            FirstBranch::Shrink => [false, true],
        };
        for expand in branches {
            let ok = if expand { st.expand(u) } else { st.shrink(u) };
            if ok {
                path.push((u, expand));
                self.frontier_rec(st, depth_left - 1, path, out);
                path.pop();
            }
            st.rollback(m);
        }
    }

    /// Replays a frontier prefix on a fresh state and searches the
    /// subtree below it (see [`crate::enumerate::Driver::run_prefix`]).
    pub(crate) fn run_prefix(&mut self, prefix: &[Decision]) {
        let mut st = SearchState::new(self.comp);
        if !st.prune_root() {
            return;
        }
        for (i, &(u, expand)) in prefix.iter().enumerate() {
            if self.cfg.retain_candidates {
                promote_free_candidates(&mut st);
            }
            let ok = if expand { st.expand(u) } else { st.shrink(u) };
            if !ok {
                // Only the *final* decision of a donated prefix may fail:
                // it is the one branch the donor never attempted itself,
                // and an infeasible sibling is an empty subtree.
                debug_assert_eq!(i + 1, prefix.len(), "prefix replay failed early");
                return;
            }
        }
        self.path = prefix.to_vec();
        self.rec(&mut st);
        self.path.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SearchOrder;
    use crate::enumerate::enumerate_maximal;
    use kr_graph::Graph;
    use kr_similarity::{AttributeTable, Metric, Threshold};

    fn bridged_cliques(r: f64) -> ProblemInstance {
        let mut edges = vec![];
        for group in [[0u32, 1, 2, 3], [3u32, 4, 5, 6], [3u32, 7, 8, 9]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((group[i], group[j]));
                }
            }
        }
        // Make the third group a 5-clique (largest core).
        for v in [3u32, 7, 8, 9] {
            edges.push((v, 10));
        }
        let g = Graph::from_edges(11, &edges);
        let pts = vec![
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (5.0, 0.0),
            (10.0, 0.0),
            (11.0, 0.0),
            (10.0, 1.0),
            (5.0, 4.0),
            (6.0, 4.0),
            (5.0, 5.0),
            (6.0, 5.0),
        ];
        ProblemInstance::new(
            g,
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(r),
            2,
        )
    }

    fn max_configs() -> Vec<(&'static str, AlgoConfig)> {
        vec![
            ("basic_max", AlgoConfig::basic_max()),
            ("adv_max", AlgoConfig::adv_max()),
            (
                "adv_max_color",
                AlgoConfig::adv_max().with_bound(BoundKind::Color),
            ),
            (
                "adv_max_kcore",
                AlgoConfig::adv_max().with_bound(BoundKind::KCore),
            ),
            (
                "adv_max_ck",
                AlgoConfig::adv_max().with_bound(BoundKind::ColorKCore),
            ),
            ("adv_max_deg", AlgoConfig::adv_max_no_order()),
            (
                "adv_max_shrinkfirst",
                AlgoConfig::adv_max().with_branch(BranchPolicy::AlwaysShrink),
            ),
            (
                "adv_max_random",
                AlgoConfig::adv_max().with_order(SearchOrder::Random),
            ),
        ]
    }

    #[test]
    fn maximum_matches_enumeration() {
        for r in [7.0, 9.0, 100.0] {
            let p = bridged_cliques(r);
            let enum_res = enumerate_maximal(&p, &AlgoConfig::adv_enum());
            let expect = enum_res.cores.iter().map(|c| c.len()).max().unwrap_or(0);
            for (name, cfg) in max_configs() {
                let res = find_maximum(&p, &cfg);
                assert!(res.completed, "{name}");
                let got = res.core.as_ref().map_or(0, |c| c.len());
                assert_eq!(got, expect, "{name} at r={r}");
                if let Some(c) = &res.core {
                    assert!(crate::verify::is_kr_core(&p, c), "{name} invalid core");
                }
            }
        }
    }

    #[test]
    fn none_when_no_core() {
        let p = bridged_cliques(0.1);
        let res = find_maximum(&p, &AlgoConfig::adv_max());
        assert!(res.core.is_none());
    }

    #[test]
    fn bound_prunes_counted() {
        let p = bridged_cliques(7.0);
        let res = find_maximum(&p, &AlgoConfig::adv_max());
        // With several components, at least the skip-or-prune machinery
        // must have fired somewhere on this instance.
        assert!(res.stats.nodes > 0);
    }

    #[test]
    fn node_limit_marks_incomplete() {
        let p = bridged_cliques(7.0);
        let res = find_maximum(&p, &AlgoConfig::adv_max().with_node_limit(2));
        assert!(!res.completed);
    }

    #[test]
    fn pre_cancelled_flag_marks_incomplete() {
        let p = bridged_cliques(7.0);
        let flag = crate::config::CancelFlag::new();
        flag.cancel();
        let res = find_maximum(&p, &AlgoConfig::adv_max().with_cancel(flag));
        assert!(!res.completed);
    }
}
