//! Process-global `engine.*` registry counters for the parallel engine.
//!
//! Counter taxonomy (all monotonic, cumulative across every query in
//! the process; the server merges them into `metrics` wire snapshots):
//!
//! * `engine.subtasks_split` — search subtasks created by frontier
//!   prefix-splitting (enumeration + maximum).
//! * `engine.pool_tasks` — tasks submitted to a query worker pool
//!   (subtasks plus preprocessing shards).
//! * `engine.pool_tasks_stolen` — pool tasks executed by a worker other
//!   than the spawning thread, i.e. tasks that crossed the pool's
//!   work-stealing deques. `stolen / pool_tasks` measures how much the
//!   pool actually load-balances.
//! * `engine.incumbent_updates` — successful advances of the shared
//!   atomic incumbent during parallel maximum search (how often workers
//!   publish a new best size to each other).
//! * `engine.resplits` — re-split events: a running subtask noticed the
//!   pool was starving and donated part of its remaining frontier
//!   (see [`crate::config::Resplit`]).
//! * `engine.resplit_subtasks` — subtasks created by re-splitting, on
//!   top of `engine.subtasks_split`'s initial frontier split.

use std::sync::{Arc, OnceLock};

pub(crate) struct EngineObs {
    pub subtasks_split: Arc<kr_obs::Counter>,
    pub pool_tasks: Arc<kr_obs::Counter>,
    pub pool_tasks_stolen: Arc<kr_obs::Counter>,
    pub incumbent_updates: Arc<kr_obs::Counter>,
    pub resplits: Arc<kr_obs::Counter>,
    pub resplit_subtasks: Arc<kr_obs::Counter>,
}

pub(crate) fn engine_obs() -> &'static EngineObs {
    static OBS: OnceLock<EngineObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = kr_obs::global();
        EngineObs {
            subtasks_split: reg.counter("engine.subtasks_split"),
            pool_tasks: reg.counter("engine.pool_tasks"),
            pool_tasks_stolen: reg.counter("engine.pool_tasks_stolen"),
            incumbent_updates: reg.counter("engine.incumbent_updates"),
            resplits: reg.counter("engine.resplits"),
            resplit_subtasks: reg.counter("engine.resplit_subtasks"),
        }
    })
}
