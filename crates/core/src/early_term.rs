//! Early termination (Theorem 5).
//!
//! A subtree can be abandoned when every (k,r)-core it could emit is
//! provably non-maximal because some excluded vertex (or set of excluded
//! vertices) can always be re-attached:
//!
//! * **(i)** some `e ∈ SF_C(E)` (excluded, similar to all of `C`, and by
//!   the E-invariant to all of `M`) has `deg(e, M) ≥ k`;
//! * **(ii)** some `U ⊆ SF_{C∪E}(E)` has `deg(u, M ∪ U) ≥ k` for every
//!   `u ∈ U` *and is attached to `M`* (the attachment requirement keeps
//!   `R ∪ U` connected — the paper leaves it implicit; dropping it would
//!   wrongly suppress cores that `U` cannot reach).
//!
//! Both conditions extend only cores that contain all of `M`, which is
//! exactly the family the enumeration emits at leaves below this node
//! (see `enumerate`), so terminating is sound. With `M = ∅` nothing can be
//! concluded and the check is skipped.

use crate::search::{SearchState, Status};
use kr_graph::VertexId;

/// Returns true when the current subtree can be terminated (Theorem 5).
pub fn can_terminate(st: &SearchState<'_>) -> bool {
    let (n_m, _, n_e) = st.sizes();
    if n_m == 0 || n_e == 0 {
        return false;
    }
    let n = st.comp.len();
    // Condition (i): one scan of E.
    for v in 0..n as VertexId {
        if st.status(v) == Status::Excluded && st.dp_c(v) == 0 && st.deg_m(v) >= st.k {
            return true;
        }
    }
    // Condition (ii): peel SF_{C∪E}(E) down to vertices with
    // deg(·, M ∪ W) >= k, then look for a survivor attached to M.
    let mut in_w = vec![false; n];
    let mut w_list: Vec<VertexId> = Vec::new();
    for v in 0..n as VertexId {
        if st.status(v) == Status::Excluded && st.dp_c(v) == 0 && st.dp_e(v) == 0 {
            in_w[v as usize] = true;
            w_list.push(v);
        }
    }
    if w_list.is_empty() {
        return false;
    }
    // deg within M ∪ W.
    let mut deg: Vec<u32> = vec![0; n];
    for &w in &w_list {
        deg[w as usize] = st
            .comp
            .neighbors(w)
            .iter()
            .filter(|&&x| st.status(x) == Status::Chosen || in_w[x as usize])
            .count() as u32;
    }
    let mut queue: Vec<VertexId> = w_list
        .iter()
        .copied()
        .filter(|&w| deg[w as usize] < st.k)
        .collect();
    for &w in &queue {
        in_w[w as usize] = false;
    }
    while let Some(w) = queue.pop() {
        for &x in st.comp.neighbors(w) {
            if in_w[x as usize] {
                deg[x as usize] -= 1;
                if deg[x as usize] < st.k {
                    in_w[x as usize] = false;
                    queue.push(x);
                }
            }
        }
    }
    // Attachment: some surviving W vertex reachable from M through M ∪ W.
    // BFS from all M vertices over the M ∪ W vertex set.
    let mut seen = vec![false; n];
    let mut stack: Vec<VertexId> = Vec::new();
    for v in 0..n as VertexId {
        if st.status(v) == Status::Chosen {
            seen[v as usize] = true;
            stack.push(v);
        }
    }
    while let Some(v) = stack.pop() {
        for &x in st.comp.neighbors(v) {
            let xi = x as usize;
            if !seen[xi] && (st.status(x) == Status::Chosen || in_w[xi]) {
                if in_w[xi] {
                    return true; // reached a valid U member
                }
                seen[xi] = true;
                stack.push(x);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::LocalComponent;
    use crate::search::SearchState;

    /// Triangle M = {0,1,2} (k = 2), plus vertex 3 adjacent to all three.
    fn base() -> LocalComponent {
        LocalComponent::from_parts(
            vec![vec![1, 2, 3], vec![0, 2, 3], vec![0, 1, 3], vec![0, 1, 2]],
            vec![vec![]; 4],
            2,
        )
    }

    fn state_with_m_and_e(comp: &LocalComponent) -> SearchState<'_> {
        let mut st = SearchState::new(comp);
        for v in [0, 1, 2] {
            st.set_status(v, Status::Chosen);
        }
        st.set_status(3, Status::Excluded);
        st
    }

    #[test]
    fn condition_i_triggers() {
        let comp = base();
        let st = state_with_m_and_e(&comp);
        // 3 is excluded, similar to everything, deg(3, M) = 3 >= 2.
        assert!(can_terminate(&st));
    }

    #[test]
    fn no_termination_with_empty_m() {
        let comp = base();
        let mut st = SearchState::new(&comp);
        st.set_status(3, Status::Excluded);
        assert!(!can_terminate(&st));
    }

    #[test]
    fn no_termination_when_e_dissimilar_to_c() {
        // 3 dissimilar to candidate 4 -> not in SF_C(E); deg(3, M) high
        // but condition (i) must not trigger; (ii) also blocked by dp_c.
        let comp = LocalComponent::from_parts(
            vec![
                vec![1, 2, 3, 4],
                vec![0, 2, 3, 4],
                vec![0, 1, 3, 4],
                vec![0, 1, 2],
                vec![0, 1, 2],
            ],
            vec![vec![], vec![], vec![], vec![4], vec![3]],
            2,
        );
        let mut st = SearchState::new(&comp);
        for v in [0, 1, 2] {
            st.set_status(v, Status::Chosen);
        }
        st.set_status(3, Status::Excluded);
        // 4 stays a candidate; dp_c(3) = 1.
        assert!(!can_terminate(&st));
    }

    #[test]
    fn condition_ii_pair() {
        // Example 5 pattern: neither e alone has deg(e, M) >= k, but the
        // pair {4, 5} supports itself through M.
        // M = {0,1,2} triangle (k=2); 4 adj to 0 and 5; 5 adj to 1 and 4.
        let comp = LocalComponent::from_parts(
            vec![
                vec![1, 2, 4],
                vec![0, 2, 5],
                vec![0, 1],
                vec![],
                vec![0, 5],
                vec![1, 4],
            ],
            vec![vec![]; 6],
            2,
        );
        let mut st = SearchState::new(&comp);
        for v in [0, 1, 2] {
            st.set_status(v, Status::Chosen);
        }
        st.set_status(3, Status::Gone);
        st.set_status(4, Status::Excluded);
        st.set_status(5, Status::Excluded);
        assert!(can_terminate(&st));
    }

    #[test]
    fn unattached_u_rejected() {
        // W = {4,5,6} forms a triangle with deg >= 2 internally but has no
        // edge to M -> R ∪ U would be disconnected; must NOT terminate.
        let comp = LocalComponent::from_parts(
            vec![
                vec![1, 2],
                vec![0, 2],
                vec![0, 1],
                vec![],
                vec![5, 6],
                vec![4, 6],
                vec![4, 5],
            ],
            vec![vec![]; 7],
            2,
        );
        let mut st = SearchState::new(&comp);
        for v in [0, 1, 2] {
            st.set_status(v, Status::Chosen);
        }
        st.set_status(3, Status::Gone);
        for v in [4, 5, 6] {
            st.set_status(v, Status::Excluded);
        }
        assert!(!can_terminate(&st));
    }
}
